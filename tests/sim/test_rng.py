"""Tests for reproducible RNG streams."""

import numpy as np

from repro.sim.rng import make_rng, spawn_rngs, spawn_seeds


class TestMakeRng:
    def test_deterministic(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        s1 = spawn_seeds(42, 5)
        s2 = spawn_seeds(42, 5)
        assert s1 == s2
        assert len(s1) == 5

    def test_children_pairwise_distinct(self):
        seeds = spawn_seeds(0, 50)
        assert len(set(seeds)) == 50

    def test_independent_of_sibling_count_prefix(self):
        """The first k children are the same regardless of how many are
        spawned — sweeps can grow without invalidating earlier runs."""
        assert spawn_seeds(9, 3) == spawn_seeds(9, 6)[:3]

    def test_zero(self):
        assert spawn_seeds(1, 0) == []


class TestSpawnRngs:
    def test_streams_independent(self):
        rngs = spawn_rngs(123, 3)
        draws = [r.random(4).tolist() for r in rngs]
        assert draws[0] != draws[1] != draws[2]

    def test_deterministic(self):
        a = spawn_rngs(5, 2)[1].random(3)
        b = spawn_rngs(5, 2)[1].random(3)
        assert np.array_equal(a, b)
