"""Tests for ``run_sweep(dispatch="store")`` and the sweep-worker CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from tests.conftest import assert_summaries_equal

import repro.sim._sweep as sweep_mod
from repro.sim.config import SimulationConfig
from repro.sim._sweep import SweepWorkerError, available_workers, run_sweep
from repro.store.dispatch import last_dispatch_stats
from repro.store.hashing import config_hash
from repro.store._runstore import RunStore


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=8, n_articles=2, founders_per_article=2,
        training_steps=5, eval_steps=5, seed=seed, **kw,
    )


class TestDispatchSweep:
    def test_matches_local_execution(self, tmp_path):
        grid = [tiny(seed=s) for s in range(5)]
        dispatched = run_sweep(
            grid, backend="serial", store=RunStore(tmp_path / "a"),
            dispatch="store", lane_width=2,
        )
        local = run_sweep(grid, backend="serial", store=RunStore(tmp_path / "b"))
        for d, loc in zip(dispatched, local):
            assert d.config == loc.config
            assert_summaries_equal(d.summary, loc.summary)

    def test_persists_and_resumes(self, tmp_path):
        store = RunStore(tmp_path)
        grid = [tiny(seed=s) for s in range(4)]
        run_sweep(grid, backend="serial", store=store, dispatch="store")
        assert last_dispatch_stats().computed == 4
        assert all(store.contains(c) for c in grid)
        # Second invocation computes nothing; slots fill from the store.
        again = run_sweep(grid, backend="serial", store=store, dispatch="store")
        assert last_dispatch_stats().computed == 0
        assert [r.config for r in again] == grid

    def test_duplicate_configs_compute_once(self, tmp_path):
        store = RunStore(tmp_path)
        grid = [tiny(seed=1), tiny(seed=2), tiny(seed=1)]
        results = run_sweep(grid, backend="serial", store=store, dispatch="store")
        assert last_dispatch_stats().computed == 2
        assert results[0].config == results[2].config
        # Duplicate slots carry distinct objects (no aliasing).
        assert results[0] is not results[2]

    def test_event_configs_run_locally(self, tmp_path):
        store = RunStore(tmp_path)
        grid = [tiny(seed=0), tiny(seed=1, collect_events=True)]
        results = run_sweep(grid, backend="serial", store=store, dispatch="store")
        assert results[1].events is not None
        # The event config never entered the published grid.
        manifest = store.get_grid(store.grid_keys()[0])
        assert list(manifest.configs) == [tiny(seed=0)]

    def test_progress_sees_every_slot(self, tmp_path):
        seen = []
        grid = [tiny(seed=s) for s in range(3)]
        run_sweep(
            grid, backend="serial", store=RunStore(tmp_path), dispatch="store",
            progress=lambda done, total, index, result, cached: seen.append(
                (done, total, index)
            ),
        )
        assert len(seen) == 3
        assert seen[-1][0] == 3 and all(total == 3 for _, total, _ in seen)

    def test_requires_store(self):
        with pytest.raises(ValueError, match="needs a store"):
            run_sweep([tiny()], backend="serial", dispatch="store")

    def test_rejects_unknown_dispatch(self, tmp_path):
        with pytest.raises(ValueError, match="unknown dispatch"):
            run_sweep([tiny()], backend="serial", dispatch="remote")

    def test_local_dispatch_is_classic_path(self, tmp_path):
        store = RunStore(tmp_path)
        results = run_sweep([tiny()], backend="serial", store=store,
                            dispatch="local")
        assert store.grid_keys() == []  # nothing published
        assert results[0].config == tiny()

    def test_worker_failure_releases_lease_and_names_task(
        self, tmp_path, monkeypatch
    ):
        from repro.store.dispatch import LeaseBoard

        store = RunStore(tmp_path)
        grid = [tiny(seed=s) for s in range(2)]

        def boom(configs):
            raise RuntimeError("kernel fault")

        monkeypatch.setattr(sweep_mod, "_task_worker", boom)
        with pytest.raises(SweepWorkerError) as err:
            run_sweep(grid, backend="serial", store=store, dispatch="store",
                      lane_width=2)
        assert err.value.task_hashes  # the claimed task's config hashes
        assert err.value.task_hashes[0][:12] in str(err.value)
        # The lease was released, not leaked.
        assert LeaseBoard(store.root).active() == []


class TestSweepWorkerError:
    def test_message_without_task_hashes_unchanged(self):
        err = SweepWorkerError(3, tiny(), RuntimeError("x"))
        assert "claimed task" not in str(err)
        assert err.task_hashes == []

    def test_message_lists_task_hashes(self):
        hashes = [config_hash(tiny(seed=s)) for s in range(2)]
        err = SweepWorkerError(0, tiny(), RuntimeError("x"), task_hashes=hashes)
        assert err.task_hashes == hashes
        for h in hashes:
            assert h[:12] in str(err)


class TestAvailableWorkers:
    def test_respects_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(
            sweep_mod.os, "sched_getaffinity", lambda pid: {0, 1, 2, 3},
            raising=False,
        )
        assert available_workers() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(sweep_mod.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 5)
        assert available_workers() == 4

    def test_never_below_one(self, monkeypatch):
        monkeypatch.setattr(
            sweep_mod.os, "sched_getaffinity", lambda pid: {0}, raising=False
        )
        assert available_workers() == 1


class TestSweepWorkerProcesses:
    def test_two_workers_drain_one_grid_without_duplicates(self, tmp_path):
        """Two real ``repro sweep-worker`` processes split one grid.

        The distributed handshake end to end: publish a manifest, point
        two independent processes at the store, assert a complete drain
        with zero duplicate computation (disjoint computed sets whose
        union is the whole grid).
        """
        store = RunStore(tmp_path / "store")
        grid = [
            SimulationConfig(
                n_agents=8, n_articles=2, founders_per_article=2,
                training_steps=40, eval_steps=40, seed=s,
            )
            for s in range(6)
        ]
        from repro.store.dispatch import publish_sweep_grid

        publish_sweep_grid(store, grid, lane_width=1)
        env = {
            **os.environ,
            "PYTHONPATH": str(Path(__file__).parents[2] / "src"),
        }
        cmd = [
            sys.executable, "-m", "repro.store.cli", "sweep-worker",
            str(store.root), "--summary-json", "--quiet",
            "--wait-for-grid", "0",
        ]
        procs = [
            subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True, env=env)
            for _ in range(2)
        ]
        outs = [p.communicate(timeout=600)[0] for p in procs]
        assert all(p.returncode == 0 for p in procs)
        summaries = [json.loads(out.splitlines()[-1]) for out in outs]
        computed = [set(s["computed_hashes"]) for s in summaries]
        assert not (computed[0] & computed[1]), "duplicate computation"
        assert computed[0] | computed[1] == {config_hash(c) for c in grid}
        store.refresh()  # pick up the workers' index appends
        assert all(store.contains(c) for c in grid)
