"""The kernel-backend registry and its contracts.

Everything here must pass both with and without Numba installed: the
``compiled`` backend is exercised through its interpreted mode
(``CompiledBackend(jit=False)``) where a compiler is not required, and
the graceful-degradation path (resolve ``"compiled"`` -> warn once ->
numpy singleton) is tested only when Numba is actually absent.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.sim.backends import (
    BACKEND_CHOICES,
    DEFAULT_BACKEND,
    KernelBackend,
    NumpyBackend,
    backend_info,
    default_kernels,
    get_backend,
    list_backends,
    register_backend,
    reset_backend_cache,
)
from repro.sim.backends.compiled import (
    CompiledBackend,
    numba_available,
    numba_version,
)
from repro.sim.config import SimulationConfig
from repro.sim.lanes import assert_lane_compatible, structural_key
from repro.store.hashing import canonical_config_dict, config_hash


@pytest.fixture(autouse=True)
def _clean_registry_cache():
    """Each test resolves backends from a cold cache and leaves none behind."""
    reset_backend_cache()
    yield
    reset_backend_cache()


class TestRegistry:
    def test_default_is_numpy(self):
        assert DEFAULT_BACKEND == "numpy"
        assert get_backend() is get_backend("numpy")
        assert isinstance(get_backend(), NumpyBackend)

    def test_singleton_per_name(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert default_kernels() is get_backend("numpy")

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="numpy"):
            get_backend("fortran")
        with pytest.raises(ValueError):
            backend_info("fortran")

    def test_builtin_choices(self):
        assert set(BACKEND_CHOICES) == {"numpy", "compiled"}

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_register_and_replace_custom_backend(self):
        from repro.sim import backends as reg

        class Custom(NumpyBackend):
            name = "custom"

        register_backend("custom", Custom)
        try:
            assert isinstance(get_backend("custom"), Custom)
            # replace=True swaps the factory and drops the old singleton.
            register_backend("custom", NumpyBackend, replace=True)
            assert type(get_backend("custom")) is NumpyBackend
        finally:
            reg._FACTORIES.pop("custom", None)
            reset_backend_cache()

    def test_list_backends_shape(self):
        infos = list_backends()
        assert [i["name"] for i in infos] == sorted(i["name"] for i in infos)
        by_name = {i["name"]: i for i in infos}
        assert {"numpy", "compiled"} <= set(by_name)
        for info in infos:
            assert {"name", "available", "warmed"} <= set(info)
        assert by_name["numpy"]["available"] is True
        assert by_name["numpy"]["numpy_version"] == np.__version__

    def test_repr(self):
        assert repr(get_backend("numpy")) == "<KernelBackend numpy>"


class TestPickling:
    def test_backend_pickles_by_name_to_the_singleton(self):
        bk = get_backend("numpy")
        assert pickle.loads(pickle.dumps(bk)) is bk

    def test_interpreted_compiled_pickles_by_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        reset_backend_cache()
        bk = get_backend("compiled")
        assert pickle.loads(pickle.dumps(bk)) is bk


@pytest.mark.skipif(numba_available(), reason="degradation path needs no numba")
class TestGracefulDegradation:
    def test_compiled_falls_back_to_numpy_with_one_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED_PUREPY", raising=False)
        reset_backend_cache()
        with pytest.warns(RuntimeWarning, match="falling back"):
            bk = get_backend("compiled")
        assert bk is get_backend("numpy")
        # Cached under the requested name: resolving again stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend("compiled") is bk

    def test_backend_info_never_warns(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED_PUREPY", raising=False)
        reset_backend_cache()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            info = backend_info("compiled")
        assert info["available"] is False
        assert info["mode"] == "fallback"
        assert info["numba_version"] is None

    def test_fallback_singleton_reports_requested_name(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED_PUREPY", raising=False)
        reset_backend_cache()
        with pytest.warns(RuntimeWarning):
            get_backend("compiled")
        info = backend_info("compiled")
        assert info["name"] == "numpy"
        assert info["requested"] == "compiled"
        assert info["mode"] == "fallback"
        # "available" keeps meaning "can this *name* run natively" even
        # once the fallback singleton is cached under it.
        assert info["available"] is False

    def test_simulation_still_runs_on_compiled(self, monkeypatch):
        from repro.sim.engine import run_simulation

        monkeypatch.delenv("REPRO_COMPILED_PUREPY", raising=False)
        reset_backend_cache()
        cfg = SimulationConfig(
            n_agents=10,
            n_articles=2,
            founders_per_article=2,
            training_steps=5,
            eval_steps=5,
        )
        with pytest.warns(RuntimeWarning):
            result = run_simulation(cfg.with_(**{"engine.backend": "compiled"}))
        assert 0.0 <= result.summary["shared_bandwidth"] <= 1.0


class TestInterpretedCompiled:
    def test_purepy_env_selects_interpreted_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        reset_backend_cache()
        bk = get_backend("compiled")
        assert isinstance(bk, CompiledBackend)
        assert bk.mode() == "interpreted"
        assert bk.available()

    def test_info_reports_mode_and_version(self):
        bk = CompiledBackend(jit=False)
        info = bk.info()
        assert info["name"] == "compiled"
        assert info["mode"] == "interpreted"
        assert info["numba_version"] == numba_version()

    def test_ensure_warm_idempotent(self):
        bk = CompiledBackend(jit=False)
        assert not bk.warmed()
        first = bk.ensure_warm()
        assert first >= 0.0
        assert bk.warmed()
        assert bk.ensure_warm() == 0.0

    def test_ensure_warm_records_compile_span(self):
        from repro.obs import tracing

        bk = CompiledBackend(jit=False)
        with tracing() as tracer:
            bk.ensure_warm(tracer)
        assert "backend/compile" in tracer.spans()

    def test_numpy_ensure_warm_is_free(self):
        bk = get_backend("numpy")
        assert bk.ensure_warm() == 0.0
        assert bk.warmed()


class TestConfigIntegration:
    def test_backend_excluded_from_store_hash(self):
        cfg = SimulationConfig(training_steps=5, eval_steps=5)
        variants = [
            cfg.with_(**{"engine.backend": name}) for name in BACKEND_CHOICES
        ]
        assert len({config_hash(v) for v in variants}) == 1
        assert "engine" not in canonical_config_dict(cfg)

    def test_backend_is_structural_for_lanes(self):
        cfg = SimulationConfig(training_steps=5, eval_steps=5)
        a = cfg.with_(**{"engine.backend": "numpy"})
        b = cfg.with_(**{"engine.backend": "compiled"})
        assert structural_key(a) != structural_key(b)
        with pytest.raises(ValueError, match="engine.backend"):
            assert_lane_compatible([a, b])
        assert_lane_compatible([a, a])

    def test_build_sim_state_threads_the_backend(self):
        from repro.sim.state import build_sim_state

        cfg = SimulationConfig(
            n_agents=8,
            n_articles=2,
            founders_per_article=2,
            training_steps=5,
            eval_steps=5,
        )
        state = build_sim_state([cfg])
        assert isinstance(state.backend, KernelBackend)
        assert state.backend is get_backend("numpy")

    def test_unknown_backend_fails_at_build(self):
        from repro.sim.state import build_sim_state

        cfg = SimulationConfig(training_steps=5, eval_steps=5).with_(
            **{"engine.backend": "no-such-backend"}
        )
        with pytest.raises(ValueError, match="unknown kernel backend"):
            build_sim_state([cfg])

    def test_run_sweep_kernel_backend_rejects_unknown_names(self, tmp_path):
        from repro.sim._sweep import run_sweep

        cfg = SimulationConfig(training_steps=5, eval_steps=5)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            run_sweep([cfg], backend="serial", kernel_backend="no-such-backend")

    def test_run_sweep_kernel_backend_applies_to_every_config(self, monkeypatch):
        from repro.sim._sweep import run_sweep

        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        reset_backend_cache()
        cfg = SimulationConfig(
            n_agents=8,
            n_articles=2,
            founders_per_article=2,
            training_steps=3,
            eval_steps=3,
        )
        results = run_sweep(
            [cfg, cfg.with_(seed=1)], backend="serial", kernel_backend="compiled"
        )
        assert [r.config.engine.backend for r in results] == ["compiled"] * 2
