"""Integration tests for the simulation engine (small horizons)."""

import numpy as np
import pytest

from repro.agents.population import PopulationMix
from repro.sim.config import SimulationConfig
from repro.sim.engine import CollaborationSimulation, run_simulation


def tiny_config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_agents=30,
        n_articles=8,
        training_steps=120,
        eval_steps=80,
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestEngineBasics:
    def test_run_completes(self):
        res = run_simulation(tiny_config())
        assert res.summary["shared_files"] >= 0.0
        assert res.wall_time_s > 0.0

    def test_deterministic_given_seed(self):
        from tests.conftest import assert_summaries_equal

        r1 = run_simulation(tiny_config(seed=11))
        r2 = run_simulation(tiny_config(seed=11))
        assert_summaries_equal(r1.summary, r2.summary)

    def test_different_seeds_differ(self):
        r1 = run_simulation(tiny_config(seed=1))
        r2 = run_simulation(tiny_config(seed=2))
        assert r1.summary != r2.summary

    def test_metrics_cover_all_steps(self):
        cfg = tiny_config()
        sim = CollaborationSimulation(cfg)
        sim.run()
        assert sim.metrics.steps_recorded == cfg.total_steps

    def test_fractions_in_range(self):
        res = run_simulation(tiny_config())
        for key in ("shared_files", "shared_bandwidth"):
            assert 0.0 <= res.summary[key] <= 1.0

    def test_training_summary_present(self):
        res = run_simulation(tiny_config())
        assert "shared_files" in res.training_summary

    def test_no_training_phase(self):
        res = run_simulation(tiny_config(training_steps=0))
        assert res.training_summary == {}

    def test_unknown_reputation_fn_rejected(self):
        with pytest.raises(ValueError):
            CollaborationSimulation(tiny_config(reputation_fn_s="magic"))


class TestPhaseProtocol:
    def test_reputation_reset_between_phases(self):
        """Paper IV-B: reputations reset at the train/eval boundary, the
        Q-matrices survive."""
        cfg = tiny_config(training_steps=60, eval_steps=1)
        sim = CollaborationSimulation(cfg)
        for _ in range(cfg.training_steps):
            sim.step(cfg.t_train)
        rep_before = sim.scheme.reputation_s().copy()
        q_before = sim.sharing_learner.q.copy()
        assert rep_before.max() > 0.05  # training moved reputations
        sim.scheme.reset_reputations()
        assert np.allclose(sim.scheme.reputation_s(), 0.05)
        assert np.array_equal(sim.sharing_learner.q, q_before)

    def test_training_is_uniform_exploration(self):
        """At T = inf every sharing action is visited roughly equally."""
        cfg = tiny_config(n_agents=40, training_steps=200, eval_steps=1)
        sim = CollaborationSimulation(cfg)
        counts = np.zeros(9)
        rng_probe = np.random.default_rng(0)
        for _ in range(50):
            rep = sim.scheme.reputation_s()[sim.rational_idx]
            from repro.core.reputation import reputation_to_state

            states = reputation_to_state(rep)
            actions = sim.behavior.sharing_actions(states, np.inf, rng_probe)
            counts += np.bincount(actions, minlength=9)
        freq = counts / counts.sum()
        assert np.all(np.abs(freq - 1 / 9) < 0.05)


class TestBehaviourTypes:
    def test_altruists_share_fully(self):
        cfg = tiny_config(mix=PopulationMix(0.0, 1.0, 0.0))
        res = run_simulation(cfg)
        assert res.summary["shared_files_altruistic"] == pytest.approx(1.0)
        assert res.summary["shared_bandwidth_altruistic"] == pytest.approx(1.0)

    def test_irrationals_share_nothing(self):
        cfg = tiny_config(mix=PopulationMix(0.0, 0.5, 0.5))
        res = run_simulation(cfg)
        assert res.summary["shared_files_irrational"] == 0.0
        assert res.summary["shared_bandwidth_irrational"] == 0.0

    def test_irrational_edits_all_destructive(self):
        cfg = tiny_config(
            mix=PopulationMix(0.0, 0.5, 0.5),
            enforce_edit_threshold=False,
            edit_attempt_prob=0.3,
        )
        res = run_simulation(cfg)
        assert res.summary["edits_constructive_irrational"] == 0.0
        assert res.summary["edits_destructive_irrational"] > 0.0

    def test_altruist_edits_all_constructive(self):
        cfg = tiny_config(
            mix=PopulationMix(0.0, 1.0, 0.0), edit_attempt_prob=0.3
        )
        res = run_simulation(cfg)
        assert res.summary["edits_destructive_altruistic"] == 0.0
        assert res.summary["edits_constructive_altruistic"] > 0.0


class TestServiceDifferentiationIntegration:
    def test_edit_threshold_blocks_free_riders(self):
        """With the theta gate on, pure free-riders never edit."""
        cfg = tiny_config(
            mix=PopulationMix(0.0, 0.5, 0.5),
            enforce_edit_threshold=True,
            edit_attempt_prob=0.3,
        )
        res = run_simulation(cfg)
        assert res.summary["edits_destructive_irrational"] == 0.0
        assert res.summary["edits_constructive_altruistic"] > 0.0

    def test_no_incentive_scheme_runs(self):
        res = run_simulation(tiny_config(incentives_enabled=False))
        assert 0.0 <= res.summary["shared_files"] <= 1.0

    def test_altruists_outrank_irrationals_in_reputation(self):
        cfg = tiny_config(mix=PopulationMix(0.0, 0.5, 0.5))
        res = run_simulation(cfg)
        assert (
            res.summary["reputation_s_altruistic"]
            > res.summary["reputation_s_irrational"]
        )


class TestChurnIntegration:
    def test_whitewash_resets_reputation(self):
        cfg = tiny_config(whitewash_rate=0.01)
        sim = CollaborationSimulation(cfg)
        res = sim.run()
        assert res.extras["whitewash_count"] > 0

    def test_leave_join_cycle(self):
        cfg = tiny_config(leave_rate=0.05, join_rate=0.2)
        res = run_simulation(cfg)
        assert 0.0 <= res.summary["shared_files"] <= 1.0


class TestEventCollection:
    def test_events_recorded_when_enabled(self):
        cfg = tiny_config(collect_events=True, edit_attempt_prob=0.3)
        res = run_simulation(cfg)
        assert res.events is not None
        assert len(res.events.edits) > 0

    def test_events_disabled_by_default(self):
        res = run_simulation(tiny_config())
        assert res.events is None

    def test_edit_events_consistent(self):
        cfg = tiny_config(collect_events=True, edit_attempt_prob=0.3)
        res = run_simulation(cfg)
        for ev in res.events.edits[:200]:
            assert 0.0 <= ev.for_weight <= 1.0 + 1e-9
            assert 0.5 <= ev.required_majority <= 0.75
            if ev.accepted:
                assert ev.for_weight >= ev.required_majority


class TestNoRationalPopulation:
    def test_pure_fixed_population(self):
        cfg = tiny_config(mix=PopulationMix(0.0, 0.6, 0.4))
        res = run_simulation(cfg)
        assert np.isnan(res.summary["shared_files_rational"])
        assert res.summary["shared_files_altruistic"] == pytest.approx(1.0)
