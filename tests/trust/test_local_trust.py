"""Tests for local trust accounting and normalization."""

import numpy as np
import pytest

from repro.trust.local_trust import LocalTrustMatrix, normalize_trust


class TestNormalizeTrust:
    def test_rows_sum_to_one(self):
        scores = np.array([[0.0, 3.0, 1.0], [2.0, 0.0, 2.0], [0.0, 0.0, 0.0]])
        c = normalize_trust(scores)
        assert np.allclose(c.sum(axis=1), 1.0)

    def test_negative_scores_floored(self):
        scores = np.array([[0.0, -5.0], [1.0, 0.0]])
        c = normalize_trust(scores)
        assert c[0].tolist() == [0.5, 0.5]  # empty row -> uniform prior

    def test_prior_used_for_empty_rows(self):
        scores = np.zeros((3, 3))
        prior = np.array([1.0, 0.0, 0.0])
        c = normalize_trust(scores, prior)
        assert np.allclose(c, np.tile(prior, (3, 1)))

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError):
            normalize_trust(np.zeros((2, 2)), np.array([0.7, 0.7]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalize_trust(np.zeros((2, 3)))


class TestLocalTrustMatrix:
    def test_record_batch(self):
        lt = LocalTrustMatrix(3)
        lt.record(
            raters=np.array([0, 0, 1]),
            ratees=np.array([1, 2, 2]),
            satisfactory=np.array([True, False, True]),
        )
        assert lt.sat[0, 1] == 1
        assert lt.unsat[0, 2] == 1
        assert lt.sat[1, 2] == 1

    def test_scores_sat_minus_unsat(self):
        lt = LocalTrustMatrix(2)
        lt.record(np.array([0, 0, 0]), np.array([1, 1, 1]), np.array([True, True, False]))
        assert lt.scores()[0, 1] == 1.0

    def test_diagonal_zeroed(self):
        lt = LocalTrustMatrix(2)
        s = lt.scores()
        assert np.all(np.diag(s) == 0)

    def test_self_rating_rejected(self):
        lt = LocalTrustMatrix(2)
        with pytest.raises(ValueError):
            lt.record(np.array([0]), np.array([0]), np.array([True]))

    def test_matrix_normalized(self):
        lt = LocalTrustMatrix(3)
        lt.record(np.array([0]), np.array([1]), np.array([True]))
        c = lt.matrix()
        assert np.allclose(c.sum(axis=1), 1.0)
        assert c[0, 1] == pytest.approx(1.0)

    def test_misaligned_rejected(self):
        lt = LocalTrustMatrix(3)
        with pytest.raises(ValueError):
            lt.record(np.array([0]), np.array([1, 2]), np.array([True]))
