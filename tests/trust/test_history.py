"""Tests for private/shared interaction histories."""

import numpy as np
import pytest

from repro.trust.history import PrivateHistory, SharedHistory


class TestPrivateHistory:
    def test_record_and_opinion(self):
        h = PrivateHistory(4)
        h.record(
            np.array([0, 0, 0]), np.array([1, 1, 1]), np.array([True, True, False])
        )
        assert h.opinion(0, 1) == pytest.approx(2 / 3)

    def test_unobserved_is_neutral(self):
        h = PrivateHistory(3)
        assert h.opinion(0, 2) == 0.5
        assert not h.observed(0, 2)

    def test_coverage(self):
        h = PrivateHistory(3)
        assert h.coverage() == 0.0
        h.record(np.array([0]), np.array([1]), np.array([True]))
        assert h.coverage() == pytest.approx(1 / 6)

    def test_coverage_excludes_diagonal(self):
        h = PrivateHistory(2)
        h.record(np.array([0, 1]), np.array([1, 0]), np.array([True, True]))
        assert h.coverage() == 1.0


class TestSharedHistory:
    def test_global_opinions(self):
        h = SharedHistory(3)
        h.record(
            np.array([0, 1, 2]),
            np.array([2, 2, 1]),
            np.array([True, False, True]),
        )
        ops = h.opinions()
        assert ops[2] == pytest.approx(0.5)
        assert ops[1] == pytest.approx(1.0)
        assert ops[0] == 0.5  # unobserved

    def test_records_disabled_by_default(self):
        h = SharedHistory(2)
        h.record(np.array([0]), np.array([1]), np.array([True]))
        assert h.records == []

    def test_records_kept_when_enabled(self):
        h = SharedHistory(2)
        h.keep_records = True
        h.record(np.array([0]), np.array([1]), np.array([True]), step=5)
        assert len(h.records) == 1
        assert h.records[0].step == 5
        assert h.records[0].subject_id == 1
