"""Tests for max-flow trust, validated against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trust.maxflow import max_flow_trust, pairwise_trust_matrix


def nx_max_flow(capacity: np.ndarray, s: int, t: int) -> float:
    g = nx.DiGraph()
    n = capacity.shape[0]
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and capacity[i, j] > 0:
                g.add_edge(i, j, capacity=float(capacity[i, j]))
    return float(nx.maximum_flow_value(g, s, t)) if g.has_node(s) else 0.0


class TestMaxFlowTrust:
    def test_simple_path(self):
        cap = np.zeros((3, 3))
        cap[0, 1] = 2.0
        cap[1, 2] = 1.5
        assert max_flow_trust(cap, 0, 2) == pytest.approx(1.5)

    def test_parallel_paths_add(self):
        cap = np.zeros((4, 4))
        cap[0, 1] = cap[1, 3] = 1.0
        cap[0, 2] = cap[2, 3] = 2.0
        assert max_flow_trust(cap, 0, 3) == pytest.approx(3.0)

    def test_no_path(self):
        cap = np.zeros((3, 3))
        cap[0, 1] = 1.0
        assert max_flow_trust(cap, 0, 2) == 0.0

    def test_classic_example(self):
        # CLRS-style network with a known max flow of 23.
        cap = np.zeros((6, 6))
        cap[0, 1] = 16
        cap[0, 2] = 13
        cap[1, 2] = 10
        cap[1, 3] = 12
        cap[2, 1] = 4
        cap[2, 4] = 14
        cap[3, 2] = 9
        cap[3, 5] = 20
        cap[4, 3] = 7
        cap[4, 5] = 4
        assert max_flow_trust(cap, 0, 5) == pytest.approx(23.0)

    def test_matches_networkx_random(self):
        rng = np.random.default_rng(9)
        for _ in range(5):
            cap = rng.random((7, 7)) * (rng.random((7, 7)) < 0.5)
            np.fill_diagonal(cap, 0.0)
            ours = max_flow_trust(cap, 0, 6)
            theirs = nx_max_flow(cap, 0, 6)
            assert ours == pytest.approx(theirs, abs=1e-9)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        n = 6
        cap = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
        np.fill_diagonal(cap, 0.0)
        assert max_flow_trust(cap, 0, n - 1) == pytest.approx(
            nx_max_flow(cap, 0, n - 1), abs=1e-9
        )

    def test_collusion_resistant(self):
        """A clique inflating internal edges gains no inbound trust."""
        n = 5
        cap = np.zeros((n, n))
        # Honest: 0 -> 1 -> 2 modest trust.
        cap[0, 1] = cap[1, 2] = 1.0
        # Colluders 3, 4 trust each other enormously.
        cap[3, 4] = cap[4, 3] = 1000.0
        assert max_flow_trust(cap, 0, 3) == 0.0
        assert max_flow_trust(cap, 0, 4) == 0.0

    def test_input_validation(self):
        cap = np.zeros((3, 3))
        with pytest.raises(ValueError):
            max_flow_trust(cap, 0, 0)
        with pytest.raises(IndexError):
            max_flow_trust(cap, 0, 5)
        with pytest.raises(ValueError):
            max_flow_trust(np.full((2, 2), -1.0), 0, 1)
        with pytest.raises(ValueError):
            max_flow_trust(np.zeros((2, 3)), 0, 1)

    def test_does_not_mutate_input(self):
        cap = np.zeros((3, 3))
        cap[0, 1] = cap[1, 2] = 1.0
        before = cap.copy()
        max_flow_trust(cap, 0, 2)
        assert np.array_equal(cap, before)


class TestPairwiseTrustMatrix:
    def test_shape_and_diagonal(self):
        rng = np.random.default_rng(3)
        cap = rng.random((4, 4))
        m = pairwise_trust_matrix(cap)
        assert m.shape == (4, 4)
        assert np.all(np.diag(m) == 0)

    def test_subset_of_sources(self):
        rng = np.random.default_rng(3)
        cap = rng.random((4, 4))
        m = pairwise_trust_matrix(cap, sources=np.array([1]))
        assert m.shape == (1, 4)
        assert m[0, 2] == pytest.approx(max_flow_trust(cap, 1, 2))
