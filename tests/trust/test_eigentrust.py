"""Tests for EigenTrust, including the collusion weakness the paper cites."""

import numpy as np
import pytest

from repro.trust.eigentrust import eigentrust
from repro.trust.local_trust import normalize_trust


def random_c(n, seed):
    rng = np.random.default_rng(seed)
    return normalize_trust(rng.random((n, n)))


class TestEigenTrust:
    def test_converges(self):
        res = eigentrust(random_c(10, 0))
        assert res.converged
        assert res.residual < 1e-9

    def test_trust_is_probability_vector(self):
        res = eigentrust(random_c(8, 1))
        assert res.trust.sum() == pytest.approx(1.0)
        assert np.all(res.trust >= 0)

    def test_matches_principal_eigenvector_when_alpha_zero(self):
        """With no damping, the fixpoint is the left principal eigenvector."""
        c = random_c(6, 2)
        res = eigentrust(c, alpha=0.0, max_iter=20000, tol=1e-14)
        w, v = np.linalg.eig(c.T)
        principal = np.real(v[:, np.argmax(np.real(w))])
        principal = np.abs(principal) / np.abs(principal).sum()
        assert res.trust == pytest.approx(principal, abs=1e-6)

    def test_good_peer_ranks_above_bad_peer(self):
        # Peer 2 receives consistently positive ratings, peer 3 none.
        n = 4
        scores = np.zeros((n, n))
        scores[0, 2] = scores[1, 2] = scores[3, 2] = 5.0
        scores[0, 1] = 1.0
        c = normalize_trust(scores)
        res = eigentrust(c)
        assert res.trust[2] > res.trust[3]

    def test_pretrusted_peers_boosted(self):
        c = random_c(5, 3)
        p = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        res_uniform = eigentrust(c)
        res_pre = eigentrust(c, pretrusted=p, alpha=0.5)
        assert res_pre.trust[0] > res_uniform.trust[0]

    def test_collusion_boosts_clique(self):
        """The paper's critique: a clique rating itself inflates its trust."""
        n = 8
        honest = np.zeros((n, n))
        # Honest peers (0..5) rate each other positively.
        for i in range(6):
            for j in range(6):
                if i != j:
                    honest[i, j] = 1.0
        baseline = eigentrust(normalize_trust(honest), alpha=0.05)
        colluding = honest.copy()
        # Colluders 6, 7 rate each other massively.
        colluding[6, 7] = colluding[7, 6] = 100.0
        # One naive honest peer gives them a little trust (the entry point).
        colluding[0, 6] = 1.0
        boosted = eigentrust(normalize_trust(colluding), alpha=0.05)
        assert boosted.trust[6] + boosted.trust[7] > (
            baseline.trust[6] + baseline.trust[7] + 0.05
        )

    def test_non_convergence_reported(self):
        res = eigentrust(random_c(10, 4), max_iter=1, tol=1e-16)
        assert not res.converged

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -0.1},
            {"alpha": 1.5},
        ],
    )
    def test_alpha_validation(self, kwargs):
        with pytest.raises(ValueError):
            eigentrust(random_c(4, 5), **kwargs)

    def test_rejects_unnormalized_matrix(self):
        with pytest.raises(ValueError):
            eigentrust(np.ones((3, 3)))

    def test_rejects_bad_pretrusted(self):
        with pytest.raises(ValueError):
            eigentrust(random_c(3, 6), pretrusted=np.array([0.5, 0.5, 0.5]))
