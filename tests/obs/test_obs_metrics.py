"""Tests for counters, gauges, histograms and the metrics registry."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_inc_accepts_negative(self):
        g = Gauge()
        g.inc(-1.5)
        assert g.value == -1.5


class TestHistogram:
    def test_buckets_are_sorted_and_cumulative(self):
        h = Histogram(buckets=(1.0, 0.1, 10.0))
        assert h.buckets == (0.1, 1.0, 10.0)
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)  # above every bound: only sum/count see it
        assert h.bucket_counts == [1, 2, 3]
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)

    def test_boundary_is_le(self):
        h = Histogram(buckets=(1.0,))
        h.observe(1.0)
        assert h.bucket_counts == [1]

    def test_mean(self):
        h = Histogram()
        assert math.isnan(h.mean)
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_default_buckets_cover_engine_scales(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 300.0


class TestRegistry:
    def test_get_or_create_returns_same_child(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")
        reg.counter("hits").inc()
        assert reg.counter("hits").value == 1.0

    def test_labels_address_distinct_children(self):
        reg = MetricsRegistry()
        reg.counter("slots", outcome="cached").inc()
        reg.counter("slots", outcome="computed").inc(2)
        assert reg.counter("slots", outcome="cached").value == 1.0
        assert reg.counter("slots", outcome="computed").value == 2.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", a=1, b=2)
        b = reg.gauge("g", b=2, a=1)
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_histogram_buckets_fixed_on_creation(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0,))
        assert reg.histogram("h", buckets=(5.0, 9.0)) is h
        assert h.buckets == (1.0,)


class TestExposition:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", "Cache hits").inc(3)
        reg.gauge("workers", "Pool width").set(4)
        text = reg.exposition()
        assert "# HELP hits_total Cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert "hits_total 3" in text
        assert "# TYPE workers gauge" in text
        assert "workers 4" in text

    def test_labelled_samples(self):
        reg = MetricsRegistry()
        reg.counter("slots", "Slots", outcome="cached").inc()
        assert 'slots{outcome="cached"} 1' in reg.exposition()

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", tag='quo"te').inc()
        assert 'tag="quo\\"te"' in reg.exposition()

    def test_histogram_rendering(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "Latency", buckets=(0.5, 1.0))
        h.observe(0.25)
        h.observe(0.75)
        text = reg.exposition()
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 1" in text  # integral sums render integral
        assert "lat_count 2" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().exposition() == ""


class TestSnapshot:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.gauge("workers").set(2)
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        snap = reg.snapshot()
        assert snap["hits"] == [{"type": "counter", "value": 1.0}]
        assert snap["workers"] == [{"type": "gauge", "value": 2.0}]
        (lat,) = snap["lat"]
        assert lat["type"] == "histogram"
        assert lat["count"] == 1
        assert lat["buckets"] == {"1": 1}

    def test_snapshot_includes_labels(self):
        reg = MetricsRegistry()
        reg.counter("slots", outcome="cached").inc()
        (entry,) = reg.snapshot()["slots"]
        assert entry["labels"] == {"outcome": "cached"}
