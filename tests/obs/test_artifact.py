"""Tests for telemetry artifacts, phase breakdowns and aggregation."""

import json

from repro.obs import (
    TELEMETRY_SCHEMA_VERSION,
    Tracer,
    aggregate_telemetry,
    build_telemetry,
    phase_breakdown,
    render_phase_table,
    render_stats_table,
    validate_telemetry,
)


def traced_payload(**kwargs):
    """A small artifact with two phases covering the protocol spans."""
    tracer = Tracer(enabled=True)
    tracer.record("engine/train", 6.0, attrs={"lanes": 1})
    tracer.record("engine/eval", 4.0)
    tracer.record("phase/act", 3.0, mem_delta=1024)
    tracer.record("phase/act", 4.0, mem_delta=1024)
    tracer.record("phase/edit_vote", 2.5)
    return build_telemetry(tracer, **kwargs)


class TestBuildValidate:
    def test_build_shape(self):
        payload = traced_payload(
            config_hash="abc", wall_time_s=10.5, meta={"scenario": "x"}
        )
        assert payload["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert payload["config_hash"] == "abc"
        assert payload["wall_time_s"] == 10.5
        assert payload["meta"] == {"scenario": "x"}
        assert {s["name"] for s in payload["spans"]} == {
            "engine/train", "engine/eval", "phase/act", "phase/edit_vote",
        }
        json.dumps(payload)  # must be JSON-able as-is

    def test_optional_fields_omitted(self):
        payload = traced_payload()
        assert payload["config_hash"] is None
        assert "wall_time_s" not in payload
        assert "meta" not in payload

    def test_validate_accepts_roundtrip(self):
        payload = traced_payload(config_hash="abc")
        revived = json.loads(json.dumps(payload))
        assert validate_telemetry(revived) == revived

    def test_validate_rejects_garbage(self):
        assert validate_telemetry(None) is None
        assert validate_telemetry("nope") is None
        assert validate_telemetry({}) is None
        assert validate_telemetry(
            {"schema_version": TELEMETRY_SCHEMA_VERSION + 1, "spans": []}
        ) is None
        assert validate_telemetry(
            {"schema_version": TELEMETRY_SCHEMA_VERSION, "spans": "x"}
        ) is None
        assert validate_telemetry(
            {"schema_version": TELEMETRY_SCHEMA_VERSION, "spans": [{"name": 3}]}
        ) is None


class TestPhaseBreakdown:
    def test_shares_and_coverage(self):
        b = phase_breakdown(traced_payload())
        assert b["protocol_s"] == 10.0
        assert b["phase_total_s"] == 9.5
        assert b["coverage"] == 0.95
        assert [row["name"] for row in b["phases"]] == [
            "phase/act", "phase/edit_vote",
        ]
        act = b["phases"][0]
        assert act["calls"] == 2
        assert act["total_s"] == 7.0
        assert act["share"] == 0.7
        assert act["mem_delta_bytes"] == 2048

    def test_protocol_fallback_without_engine_spans(self):
        tracer = Tracer(enabled=True)
        tracer.record("phase/act", 2.0)
        b = phase_breakdown(build_telemetry(tracer))
        assert b["protocol_s"] == 2.0
        assert b["coverage"] == 1.0

    def test_empty_payload(self):
        b = phase_breakdown(build_telemetry(Tracer(enabled=True)))
        assert b["phases"] == []
        assert b["coverage"] == 0.0


class TestRendering:
    def test_phase_table(self):
        text = render_phase_table(phase_breakdown(traced_payload()))
        assert "act" in text and "edit_vote" in text
        assert "phase coverage 95.0%" in text
        assert "mem delta" not in text

    def test_phase_table_with_memory(self):
        text = render_phase_table(
            phase_breakdown(traced_payload()), memory=True
        )
        assert "mem delta" in text
        assert "2.0KiB" in text

    def test_phase_table_empty(self):
        empty = phase_breakdown(build_telemetry(Tracer(enabled=True)))
        assert "no phase spans" in render_phase_table(empty)

    def test_stats_table(self):
        agg = aggregate_telemetry([traced_payload(), traced_payload()])
        text = render_stats_table(agg)
        assert "phase/act" in text
        assert "engine/train" in text

    def test_stats_table_empty(self):
        assert "no telemetry" in render_stats_table(aggregate_telemetry([]))


class TestAggregate:
    def test_totals_across_runs(self):
        agg = aggregate_telemetry([traced_payload(), traced_payload()])
        assert agg["runs"] == 2
        rows = {row["name"]: row for row in agg["spans"]}
        act = rows["phase/act"]
        assert act["runs"] == 2
        assert act["calls"] == 4
        assert act["total_s"] == 14.0
        assert act["mean_s_per_run"] == 7.0
        # Sorted by total time, descending.
        totals = [row["total_s"] for row in agg["spans"]]
        assert totals == sorted(totals, reverse=True)

    def test_empty(self):
        assert aggregate_telemetry([]) == {"runs": 0, "spans": []}
