"""Tests for the span tracer, the stopwatch and the ambient-tracer API."""

import io
import json
import time
import tracemalloc

import pytest

from repro.obs import (
    OBS_SCHEMA_VERSION,
    SpanAggregate,
    SpanEvent,
    Stopwatch,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
    write_events_jsonl,
)


class TestStopwatch:
    def test_elapsed_is_positive_and_monotone(self):
        watch = Stopwatch()
        a = watch.elapsed()
        b = watch.elapsed()
        assert 0.0 <= a <= b

    def test_restart_returns_elapsed_and_rebases(self):
        watch = Stopwatch()
        time.sleep(0.001)
        dt = watch.restart()
        assert dt >= 0.001
        assert watch.elapsed() < dt


class TestSpanAggregate:
    def test_mean_before_first_recording(self):
        assert SpanAggregate("x").mean_s == 0.0

    def test_as_dict_omits_empty_extras(self):
        agg = SpanAggregate("x")
        agg.count, agg.total_s = 2, 3.0
        d = agg.as_dict()
        assert d["mean_s"] == 1.5
        assert "mem_delta_bytes" not in d
        assert "attrs" not in d

    def test_as_dict_includes_extras_when_present(self):
        agg = SpanAggregate("x", attrs={"lanes": 4})
        agg.count, agg.mem_delta_bytes = 1, -128
        d = agg.as_dict()
        assert d["mem_delta_bytes"] == -128
        assert d["attrs"] == {"lanes": 4}


class TestRecording:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record("phase/act", 0.5)
        with tracer.span("engine/train"):
            pass
        assert tracer.spans() == {}
        assert len(tracer.events) == 0

    def test_record_aggregates(self):
        tracer = Tracer(enabled=True)
        tracer.record("phase/act", 0.5, attrs={"lanes": 2})
        tracer.record("phase/act", 1.5)
        agg = tracer.spans()["phase/act"]
        assert agg.count == 2
        assert agg.total_s == 2.0
        assert agg.min_s == 0.5
        assert agg.max_s == 1.5
        assert agg.mean_s == 1.0
        assert agg.attrs == {"lanes": 2}

    def test_span_context_manager_times_block(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", items=3):
            time.sleep(0.001)
        agg = tracer.spans()["work"]
        assert agg.count == 1
        assert agg.total_s >= 0.001
        assert agg.attrs == {"items": 3}

    def test_span_records_even_when_block_raises(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        assert tracer.spans()["work"].count == 1

    def test_ring_buffer_keeps_newest(self):
        tracer = Tracer(enabled=True, trace_events=True, ring_size=3)
        for i in range(5):
            tracer.record("s", float(i))
        assert len(tracer.events) == 3
        assert [e.duration_s for e in tracer.events] == [2.0, 3.0, 4.0]
        # The aggregate still saw every recording.
        assert tracer.spans()["s"].count == 5

    def test_events_not_collected_without_trace_events(self):
        tracer = Tracer(enabled=True)
        tracer.record("s", 1.0)
        assert len(tracer.events) == 0

    def test_reset_drops_everything(self):
        tracer = Tracer(enabled=True, trace_events=True)
        tracer.record("s", 1.0)
        tracer.metrics.counter("c").inc()
        tracer.reset()
        assert tracer.spans() == {}
        assert len(tracer.events) == 0
        assert tracer.metrics.snapshot() == {}


class TestSnapshotAndExposition:
    def test_snapshot_shape(self):
        tracer = Tracer(enabled=True, trace_events=True)
        tracer.record("phase/act", 0.25)
        snap = tracer.snapshot()
        assert snap["schema_version"] == OBS_SCHEMA_VERSION
        assert snap["n_events"] == 1
        (row,) = snap["spans"]
        assert row["name"] == "phase/act"
        assert row["count"] == 1
        json.dumps(snap)  # must be JSON-able as-is

    def test_exposition_derives_span_samples(self):
        tracer = Tracer(enabled=True)
        tracer.record("phase/act", 0.5)
        tracer.record("phase/act", 0.5)
        text = tracer.exposition()
        assert '# TYPE repro_span_seconds_total counter' in text
        assert 'repro_span_seconds_total{span="phase/act"} 1.0' in text
        assert 'repro_span_calls_total{span="phase/act"} 2' in text

    def test_exposition_without_spans_is_metrics_only(self):
        tracer = Tracer(enabled=True)
        tracer.metrics.counter("c", "help").inc()
        assert "repro_span" not in tracer.exposition()


class TestMemoryTracking:
    def test_tracemalloc_started_and_stopped(self):
        assert not tracemalloc.is_tracing()
        tracer = Tracer(enabled=True, track_memory=True)
        try:
            assert tracemalloc.is_tracing()
            with tracer.span("alloc"):
                blob = [0] * 50_000
            assert tracer.spans()["alloc"].mem_delta_bytes > 0
            del blob
        finally:
            tracer.close()
        assert not tracemalloc.is_tracing()

    def test_disabled_tracer_never_starts_tracemalloc(self):
        tracer = Tracer(enabled=False, track_memory=True)
        assert not tracemalloc.is_tracing()
        tracer.close()

    def test_mem_now_is_zero_when_untracked(self):
        assert Tracer(enabled=True)._mem_now() == 0


class TestAmbientTracer:
    def test_default_tracer_is_disabled(self):
        assert get_tracer().enabled is False

    def test_set_tracer_returns_previous(self):
        fresh = Tracer(enabled=True)
        previous = set_tracer(fresh)
        try:
            assert get_tracer() is fresh
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_tracing_installs_and_restores(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
        assert get_tracer() is before

    def test_tracing_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert get_tracer() is before

    def test_tracing_data_survives_the_block(self):
        with tracing() as tracer:
            tracer.record("s", 1.0)
        assert tracer.spans()["s"].count == 1


class TestJsonlExport:
    def test_write_events_jsonl(self):
        events = [SpanEvent("a", 0.0, 0.5), SpanEvent("b", 0.5, 0.25)]
        buf = io.StringIO()
        assert write_events_jsonl(events, buf) == 2
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert lines[0] == {"name": "a", "start_s": 0.0, "duration_s": 0.5}
        assert lines[1]["name"] == "b"
