"""Tracing must never perturb the simulation: bit-identity on vs off.

The tracer draws nothing from the RNG streams and touches no simulation
state, so a traced run must reproduce the untraced run bit for bit —
across every incentive scheme, with event collection and memory tracking
on.  These tests enforce that contract on small but protocol-complete
configurations (training, reputation reset, evaluation, churn).
"""

import pytest

from repro.agents.population import PopulationMix
from repro.obs import get_tracer, tracing
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_simulation

#: Mixed population so altruists, free-riders and learners all act.
MIX = PopulationMix(rational=0.5, altruistic=0.25, irrational=0.25)

ALL_PHASES = (
    "churn", "sybil", "act", "collusion", "download",
    "edit_vote", "learn", "record",
)


def tiny(seed=11, **overrides):
    params = dict(
        n_agents=24,
        n_articles=6,
        training_steps=40,
        eval_steps=30,
        founders_per_article=3,
        mix=MIX,
    )
    params.update(overrides)
    return SimulationConfig(seed=seed, **params)


def assert_results_identical(a, b):
    from tests.conftest import assert_summaries_equal

    assert_summaries_equal(a.summary, b.summary)
    assert_summaries_equal(a.training_summary, b.training_summary)
    assert a.extras["whitewash_count"] == b.extras["whitewash_count"]


class TestBitIdentity:
    @pytest.mark.parametrize("scheme", ["reputation", "none", "tft", "karma"])
    def test_traced_equals_untraced(self, scheme):
        cfg = tiny(scheme=scheme)
        plain = run_simulation(cfg)
        with tracing(trace_events=True, track_memory=True):
            traced = run_simulation(cfg)
        assert_results_identical(plain, traced)

    def test_traced_run_with_churn(self):
        cfg = tiny(seed=42, leave_rate=0.03, join_rate=0.25, whitewash_rate=0.02)
        plain = run_simulation(cfg)
        with tracing():
            traced = run_simulation(cfg)
        assert_results_identical(plain, traced)


class TestInstrumentationCoverage:
    def test_every_phase_and_engine_span_recorded(self):
        cfg = tiny()
        with tracing() as tracer:
            run_simulation(cfg)
        spans = tracer.spans()
        n_steps = cfg.training_steps + cfg.eval_steps
        for phase in ALL_PHASES:
            agg = spans[f"phase/{phase}"]
            assert agg.count == n_steps
            assert agg.attrs == {"lanes": 1, "agents": cfg.n_agents}
        assert spans["engine/train"].count == 1
        assert spans["engine/eval"].count == 1

    def test_phase_time_covers_protocol_time(self):
        from repro.obs import build_telemetry, phase_breakdown

        with tracing() as tracer:
            run_simulation(tiny())
        breakdown = phase_breakdown(build_telemetry(tracer))
        # The phase kernels are the whole step loop; the bench gate holds
        # the acceptance bar (>= 0.95) at scale, this guards the plumbing.
        assert breakdown["coverage"] >= 0.9

    def test_disabled_ambient_tracer_stays_empty(self):
        assert get_tracer().enabled is False
        run_simulation(tiny(training_steps=10, eval_steps=5))
        assert get_tracer().spans() == {}
