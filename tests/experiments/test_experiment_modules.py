"""Fast structural tests of the simulation-backed experiment drivers.

These run the drivers at tiny scale (serial backend, reduced steps) and
verify the FigureData contracts — the full-scale numbers live in
EXPERIMENTS.md and the directional assertions in the benchmarks.
"""

import numpy as np
import pytest

from repro.experiments import (
    adversary_panel,
    fig3_incentive_effect,
    fig4_population_mix,
    fig6_edit_coin_flip,
    fig7_majority_following,
    scheme_comparison,
)
from repro.sim import scenarios

TINY = dict(training_steps=40, eval_steps=30)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    """Shrink the 'fast' scenario constants so drivers finish in seconds."""
    monkeypatch.setattr(scenarios, "FAST_TRAINING_STEPS", 40)
    monkeypatch.setattr(scenarios, "FAST_EVAL_STEPS", 30)


class TestFig3Driver:
    def test_figure_contract(self):
        figs = fig3_incentive_effect.run(fast=True, n_seeds=2, backend="serial")
        fig = figs[0]
        assert fig.name == "fig3"
        assert set(fig.series) == {"incentive", "no_incentive"}
        assert fig.x.size == 2
        assert "gain_articles" in fig.meta
        assert "p_bandwidth" in fig.meta


class TestMixtureDrivers:
    def test_fig4_and_5_from_one_sweep(self):
        figs = fig4_population_mix.run_fig4_and_fig5(
            fast=True, n_seeds=1, backend="serial", percentages=[20, 80]
        )
        names = {f.name for f in figs}
        assert names == {
            "fig4_files",
            "fig4_bandwidth",
            "fig5_files",
            "fig5_bandwidth",
        }
        for f in figs:
            assert f.x.tolist() == [20.0, 80.0]
            assert set(f.series) == {"altruistic", "irrational"}

    def test_fig4_alone(self):
        figs = fig4_population_mix.run(
            fast=True, n_seeds=1, backend="serial", percentages=[50]
        )
        assert {f.name for f in figs} == {"fig4_files", "fig4_bandwidth"}


class TestFig6Driver:
    def test_figure_contract(self):
        figs = fig6_edit_coin_flip.run(
            fast=True, n_seeds=2, backend="serial", percentages=[40]
        )
        fig = figs[0]
        assert fig.name == "fig6"
        assert "constructive" in fig.series
        assert "constructive_std" in fig.series
        cons = fig.series["constructive"]
        dest = fig.series["destructive"]
        assert np.allclose(cons + dest, 1.0, atol=1e-9)


class TestFig7Driver:
    def test_two_panels(self):
        figs = fig7_majority_following.run(
            fast=True, n_seeds=1, backend="serial", percentages=[30]
        )
        assert {f.name for f in figs} == {"fig7_altruistic", "fig7_irrational"}


class TestSchemeComparison:
    def test_all_schemes_covered(self):
        figs = scheme_comparison.run(fast=True, n_seeds=1, backend="serial")
        fig = figs[0]
        assert fig.meta["schemes"] == "none,tft,karma,reputation"
        assert fig.series["articles"].size == 4
        assert np.all(fig.series["bandwidth"] >= 0.0)
        assert np.all(fig.series["bandwidth"] <= 1.0)


class TestAdversaryPanel:
    def test_schemes_times_attacks_grid(self):
        figs = adversary_panel.run(fast=True, n_seeds=1, backend="serial")
        fig = figs[0]
        assert fig.name == "adversary_panel"
        assert set(fig.series) == {"collusion", "sybil"}
        assert fig.meta["schemes"] == "none,tft,karma,reputation"
        for attack in ("collusion", "sybil"):
            assert fig.series[attack].size == 4
            assert np.all(fig.series[attack] >= 0.0)
            assert np.all(fig.series[attack] <= 1.0)
