"""Tests for the simulation-free figure drivers (Figures 1 and 2)."""

import numpy as np
import pytest

from repro.experiments import fig1_reputation, fig2_boltzmann


class TestFig1:
    def test_four_paper_betas(self):
        figs = fig1_reputation.run()
        assert len(figs) == 1
        fig = figs[0]
        assert len(fig.series) == 4
        assert set(fig.series) == {
            "beta=0.3",
            "beta=0.2",
            "beta=0.15",
            "beta=0.1",
        }

    def test_curves_start_at_r_min(self):
        fig = fig1_reputation.run()[0]
        for values in fig.series.values():
            assert values[0] == pytest.approx(0.05)

    def test_curves_monotone(self):
        fig = fig1_reputation.run()[0]
        for values in fig.series.values():
            assert np.all(np.diff(values) >= 0)

    def test_steeper_beta_higher_at_midrange(self):
        fig = fig1_reputation.run()[0]
        mid = np.searchsorted(fig.x, 15.0)
        assert fig.series["beta=0.3"][mid] > fig.series["beta=0.1"][mid]

    def test_fast_mode_fewer_points(self):
        fast = fig1_reputation.run(fast=True)[0]
        full = fig1_reputation.run()[0]
        assert fast.x.size < full.x.size


class TestFig2:
    def test_two_temperatures(self):
        figs = fig2_boltzmann.run()
        assert len(figs) == 2
        assert figs[0].meta["T"] == 2.0
        assert figs[1].meta["T"] == 1000.0

    def test_distributions_sum_to_one(self):
        for fig in fig2_boltzmann.run():
            assert fig.series["p"].sum() == pytest.approx(1.0)

    def test_t2_concentrates_t1000_flat(self):
        low_t, high_t = fig2_boltzmann.run()
        assert low_t.series["p"][-1] > 0.3
        assert np.all(np.abs(high_t.series["p"] - 0.1) < 0.01)

    def test_monotone_increasing_in_x(self):
        for fig in fig2_boltzmann.run():
            assert np.all(np.diff(fig.series["p"]) > 0)
