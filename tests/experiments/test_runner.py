"""Tests for the experiment CLI."""

import pytest

from repro.experiments.runner import (
    EXPERIMENTS,
    EXTRA_EXPERIMENTS,
    PAPER_FIGURES,
    build_parser,
    main,
)


class TestParser:
    def test_all_figures_registered(self):
        for name in PAPER_FIGURES:
            assert name in EXPERIMENTS

    def test_ablations_registered(self):
        assert "ablation-repfunc" in EXPERIMENTS
        assert "ablation-rmin" in EXPERIMENTS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.experiment == "fig1"
        assert not args.fast
        assert args.backend == "process"

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_extras_are_registered_experiments(self):
        for name in EXTRA_EXPERIMENTS:
            assert name in EXPERIMENTS
            assert name not in PAPER_FIGURES

    def test_parser_store_and_extras(self):
        args = build_parser().parse_args(["all", "--extras", "--store", "cache"])
        assert args.extras
        assert str(args.store) == "cache"
        assert build_parser().parse_args(["fig1"]).store is None


class TestMain:
    def test_fig1_end_to_end(self, tmp_path, capsys):
        rc = main(["fig1", "--fast", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig1.csv").exists()
        assert (tmp_path / "fig1.json").exists()
        out = capsys.readouterr().out
        assert "fig1" in out

    def test_fig2_end_to_end(self, tmp_path):
        rc = main(["fig2", "--fast", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig2_T2.csv").exists()
        assert (tmp_path / "fig2_T1000.csv").exists()


class TestStoreIntegration:
    def test_store_line_printed_and_ambient_reset(self, tmp_path, capsys):
        from repro.sim._sweep import get_default_store

        rc = main(
            [
                "fig1",
                "--fast",
                "--out",
                str(tmp_path / "out"),
                "--store",
                str(tmp_path / "cache"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[fig1] cache:" in out  # fig1 is analytic: 0 hits / 0 misses
        assert get_default_store() is None  # ambient store uninstalled after main
