"""Directional reproduction tests for the paper's headline claims.

These run reduced-scale simulations (smaller population, shorter horizon)
with fixed seeds, asserting the *direction* of each effect the paper
reports — the full-scale magnitudes live in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.agents.population import PopulationMix
from repro.sim.config import SimulationConfig
from repro.sim._sweep import run_sweep


def cfg(**overrides) -> SimulationConfig:
    defaults = dict(
        n_agents=60,
        n_articles=15,
        training_steps=900,
        eval_steps=500,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


SEEDS = (101, 202, 303)


@pytest.fixture(scope="module")
def fig3_results():
    configs = [cfg(incentives_enabled=True, seed=s) for s in SEEDS] + [
        cfg(incentives_enabled=False, seed=s) for s in SEEDS
    ]
    results = run_sweep(configs, backend="process")
    return results[:3], results[3:]


class TestFig3IncentiveEffect:
    def test_incentives_increase_bandwidth_sharing(self, fig3_results):
        with_inc, without = fig3_results
        inc = np.mean([r.summary["shared_bandwidth"] for r in with_inc])
        base = np.mean([r.summary["shared_bandwidth"] for r in without])
        assert inc > base

    def test_incentives_increase_article_sharing(self, fig3_results):
        with_inc, without = fig3_results
        inc = np.mean([r.summary["shared_files"] for r in with_inc])
        base = np.mean([r.summary["shared_files"] for r in without])
        assert inc > base

    def test_gain_is_moderate_not_extreme(self, fig3_results):
        """The paper stresses the scheme is only 'moderately effective'."""
        with_inc, without = fig3_results
        inc = np.mean([r.summary["shared_bandwidth"] for r in with_inc])
        base = np.mean([r.summary["shared_bandwidth"] for r in without])
        assert (inc - base) / base < 1.0  # nowhere near a 2x takeover


class TestFig7MajorityFollowing:
    def test_rational_follow_altruistic_majority(self):
        results = run_sweep(
            [
                cfg(
                    mix=PopulationMix(0.15, 0.70, 0.15),
                    enforce_edit_threshold=False,
                    seed=s,
                )
                for s in SEEDS
            ],
            backend="process",
        )
        fracs = [r.summary["edit_constructive_fraction_rational"] for r in results]
        assert np.mean(fracs) > 0.6

    def test_rational_follow_irrational_majority(self):
        results = run_sweep(
            [
                cfg(
                    mix=PopulationMix(0.15, 0.15, 0.70),
                    enforce_edit_threshold=False,
                    seed=s,
                )
                for s in SEEDS
            ],
            backend="process",
        )
        fracs = [r.summary["edit_constructive_fraction_rational"] for r in results]
        assert np.mean(fracs) < 0.4

    def test_acceptance_tracks_majority(self):
        good = run_sweep(
            [
                cfg(
                    mix=PopulationMix(0.15, 0.70, 0.15),
                    enforce_edit_threshold=False,
                    seed=SEEDS[0],
                )
            ]
        )[0]
        bad = run_sweep(
            [
                cfg(
                    mix=PopulationMix(0.15, 0.15, 0.70),
                    enforce_edit_threshold=False,
                    seed=SEEDS[0],
                )
            ]
        )[0]
        assert good.summary["accepted_constructive_rate"] > 0.9
        assert bad.summary["accepted_destructive_rate"] > 0.9


class TestSchemeStrongerThanPaperSimulated:
    def test_edit_gate_protects_against_irrational_majority(self):
        """Reproduction finding: with the designed theta gate enforced,
        free-riding vandals cannot enter voter pools and the constructive
        camp prevails even against a 70 % irrational population."""
        res = run_sweep(
            [
                cfg(
                    mix=PopulationMix(0.15, 0.15, 0.70),
                    enforce_edit_threshold=True,
                    seed=SEEDS[0],
                )
            ]
        )[0]
        assert res.summary["accepted_constructive_rate"] > 0.8
        assert res.summary["edits_destructive_irrational"] == 0.0


class TestFig4NetworkScaling:
    def test_sharing_scales_with_population_mix(self):
        lo_alt = cfg(mix=PopulationMix(0.4, 0.2, 0.4), seed=SEEDS[0])
        hi_alt = cfg(mix=PopulationMix(0.4, 0.4, 0.2), seed=SEEDS[0])
        results = run_sweep([lo_alt, hi_alt], backend="process")
        assert (
            results[1].summary["shared_files"] > results[0].summary["shared_files"]
        )
        assert (
            results[1].summary["shared_bandwidth"]
            > results[0].summary["shared_bandwidth"]
        )


class TestFig5RationalStability:
    def test_rational_sharing_insensitive_to_mix(self):
        """Paper: rational behaviour is nearly flat across mixes."""
        mixes = [PopulationMix(0.3, 0.5, 0.2), PopulationMix(0.3, 0.2, 0.5)]
        results = run_sweep(
            [cfg(mix=m, seed=s) for m in mixes for s in SEEDS[:2]],
            backend="process",
        )
        a = np.mean(
            [r.summary["shared_bandwidth_rational"] for r in results[:2]]
        )
        b = np.mean(
            [r.summary["shared_bandwidth_rational"] for r in results[2:]]
        )
        # Within a modest band, not scaling with the 30-point mix change.
        assert abs(a - b) < 0.15

    def test_bandwidth_shared_more_than_articles(self):
        """Paper Figure 5: bandwidth ~0.54-0.68 vs articles ~0.21-0.29."""
        res = run_sweep([cfg(mix=PopulationMix(0.4, 0.3, 0.3), seed=SEEDS[1])])[0]
        assert (
            res.summary["shared_bandwidth_rational"]
            > res.summary["shared_files_rational"]
        )
