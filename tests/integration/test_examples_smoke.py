"""Smoke tests: the fast example scripts must run end to end.

Only the sub-second examples run here (the simulation-heavy ones are
exercised through the same engine APIs elsewhere); each is executed
in-process via runpy so coverage tools see them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.skipif(not EXAMPLES.exists(), reason="examples directory missing")
class TestFastExamples:
    def test_reputation_design(self, capsys):
        out = run_example("reputation_design.py", capsys)
        assert "best response" in out
        assert "saturation" in out.lower()

    def test_trust_propagation(self, capsys):
        out = run_example("trust_propagation.py", capsys)
        assert "EigenTrust" in out
        assert "Max-flow" in out

    def test_experiment_store(self, capsys):
        out = run_example("experiment_store.py", capsys)
        assert "first sweep" in out
        assert "'hits': 0" in out.split("second sweep")[0]
        assert "'misses': 0" in out.split("second sweep")[1]

    def test_examples_have_docstrings_and_main(self):
        for path in EXAMPLES.glob("*.py"):
            text = path.read_text()
            assert '"""' in text.split("\n", 2)[1] or text.startswith(
                "#!/usr/bin/env python"
            ), f"{path.name} lacks a header"
            assert 'if __name__ == "__main__":' in text, f"{path.name} lacks main"
