"""Property-style invariant checks on the running engine.

Each test runs a short simulation while asserting invariants that must
hold at *every* step, catching state-corruption bugs the summary-level
tests would average away.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.population import PopulationMix
from repro.sim.config import SimulationConfig
from repro.sim.engine import CollaborationSimulation


def make_sim(seed, mix=None, **overrides):
    cfg = SimulationConfig(
        n_agents=24,
        n_articles=6,
        training_steps=200,  # sized above every manual stepping loop below
        eval_steps=10,
        mix=mix if mix is not None else PopulationMix(0.5, 0.25, 0.25),
        seed=seed,
        **overrides,
    )
    return CollaborationSimulation(cfg)


class TestPerStepInvariants:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_reputations_always_in_band(self, seed):
        sim = make_sim(seed)
        r_min = sim.config.constants.reputation_s.r_min
        for t in range(40):
            sim.step(1.0 if t % 2 else float("inf"))
            rep_s = sim.scheme.reputation_s()
            rep_e = sim.scheme.reputation_e()
            assert np.all(rep_s >= r_min - 1e-12)
            assert np.all(rep_s <= 1.0 + 1e-12)
            assert np.all(rep_e >= sim.config.constants.reputation_e.r_min - 1e-12)
            assert np.all(rep_e <= 1.0 + 1e-12)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_contributions_never_negative(self, seed):
        sim = make_sim(seed)
        for _ in range(40):
            sim.step(float("inf"))
            assert np.all(sim.scheme.ledger.sharing >= 0)
            assert np.all(sim.scheme.ledger.editing >= 0)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_actions_respect_bounds(self, seed):
        sim = make_sim(seed)
        for _ in range(30):
            sim.step(1.0)
            assert np.all(sim.peers.offered_bandwidth >= 0)
            assert np.all(sim.peers.offered_bandwidth <= 1)
            assert np.all(sim.peers.offered_files >= 0)
            assert np.all(sim.peers.offered_files <= 1)

    def test_q_matrices_stay_finite(self):
        sim = make_sim(3)
        for t in range(120):
            sim.step(1.0 if t > 60 else float("inf"))
        assert np.all(np.isfinite(sim.sharing_learner.q))
        assert np.all(np.isfinite(sim.edit_learner.q))

    @pytest.mark.parametrize("scheme", ["reputation", "none", "tft", "karma"])
    def test_all_schemes_keep_invariants(self, scheme):
        sim = make_sim(5, scheme=scheme)
        for _ in range(30):
            sim.step(float("inf"))
            rep = sim.scheme.reputation_s()
            assert np.all(rep >= 0) and np.all(rep <= 1.0 + 1e-12)

    def test_metrics_proposals_match_acceptances(self):
        """Accepted counts can never exceed proposal counts, per type."""
        sim = make_sim(7, edit_attempt_prob=0.3, enforce_edit_threshold=False)
        for _ in range(60):
            sim.step(float("inf"))
        props = sim.metrics.proposals[: sim.step_count].sum(axis=0)
        accs = sim.metrics.accepted[: sim.step_count].sum(axis=0)
        assert np.all(accs <= props + 1e-9)

    def test_vote_rights_subset_of_population(self):
        sim = make_sim(11)
        for _ in range(30):
            sim.step(float("inf"))
            can = sim.scheme.may_vote()
            assert can.shape == (sim.config.n_agents,)
            assert can.dtype == bool
