"""Cross-module integration tests: causality, punishment flow, trust stack."""

import numpy as np
import pytest

from repro.agents.population import PopulationMix
from repro.sim.config import SimulationConfig
from repro.sim.engine import CollaborationSimulation, run_simulation
from repro.trust.eigentrust import eigentrust
from repro.trust.local_trust import LocalTrustMatrix


def cfg(**overrides) -> SimulationConfig:
    defaults = dict(
        n_agents=30,
        n_articles=8,
        training_steps=150,
        eval_steps=100,
        collect_events=True,
        edit_attempt_prob=0.25,
        enforce_edit_threshold=False,
        seed=77,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestEventCausality:
    @pytest.fixture(scope="class")
    def result(self):
        return run_simulation(cfg(mix=PopulationMix(0.3, 0.4, 0.3)))

    def test_every_acceptance_met_its_majority(self, result):
        for ev in result.events.edits:
            if ev.accepted:
                assert ev.for_weight >= ev.required_majority - 1e-9

    def test_no_quorum_edits_declined(self, result):
        for ev in result.events.edits:
            if ev.n_voters == 0:
                assert not ev.accepted

    def test_vote_bans_hit_the_minority_camp(self):
        """With a 70/30 constructive majority, the destructive minority
        votes against the majority and accumulates most of the bans.
        (An altruist can occasionally be banned too when a small sampled
        voter pool happens to carry a destructive local majority.)"""
        sim = CollaborationSimulation(cfg(mix=PopulationMix(0.0, 0.7, 0.3)))
        res = sim.run()
        bans = [p for p in res.events.punishments if p.kind == "vote_ban"]
        assert bans, "expected at least one vote ban"
        banned_types = np.array([sim.peers.types[b.peer_id] for b in bans])
        n_irrational = int((banned_types == 2).sum())
        assert n_irrational >= len(bans) / 2

    def test_punished_editor_loses_reputation(self):
        sim = CollaborationSimulation(cfg(mix=PopulationMix(0.0, 0.8, 0.2)))
        res = sim.run()
        resets = [
            p for p in res.events.punishments if p.kind == "reputation_reset"
        ]
        if resets:  # destructive editors against a big majority
            for r in resets[:5]:
                assert sim.peers.types[r.peer_id] == 2


class TestQualityProtection:
    def test_quality_rises_with_constructive_majority(self):
        sim = CollaborationSimulation(cfg(mix=PopulationMix(0.2, 0.6, 0.2)))
        sim.run()
        assert sim.articles.total_quality() > 0

    def test_quality_falls_with_destructive_majority(self):
        sim = CollaborationSimulation(cfg(mix=PopulationMix(0.2, 0.2, 0.6)))
        sim.run()
        assert sim.articles.total_quality() < 0


class TestTrustStackOnSimulationData:
    def test_eigentrust_ranks_altruists_above_irrationals(self):
        """Feed download outcomes into the trust substrate the paper
        assumes, and check the propagated values agree with the oracle."""
        config = cfg(mix=PopulationMix(0.0, 0.5, 0.5), collect_events=False)
        sim = CollaborationSimulation(config)
        sim.run()
        # Build local trust from 'was the source offering bandwidth'.
        lt = LocalTrustMatrix(config.n_agents)
        rng = np.random.default_rng(0)
        offered = sim.peers.offered_bandwidth
        for _ in range(300):
            i, j = rng.integers(0, config.n_agents, size=2)
            if i == j:
                continue
            lt.record(
                np.array([i]), np.array([j]), np.array([offered[j] > 0.0])
            )
        trust = eigentrust(lt.matrix()).trust
        alt_mask = sim.peers.types == 1
        irr_mask = sim.peers.types == 2
        assert trust[alt_mask].mean() > trust[irr_mask].mean()


class TestScaleVariations:
    @pytest.mark.parametrize("n_agents", [10, 50])
    def test_population_sizes(self, n_agents):
        res = run_simulation(cfg(n_agents=n_agents, collect_events=False))
        assert 0.0 <= res.summary["shared_files"] <= 1.0

    def test_single_article(self):
        res = run_simulation(cfg(n_articles=1, collect_events=False))
        assert res.summary["votes_cast_per_step"] >= 0.0

    def test_large_vote_cap(self):
        res = run_simulation(cfg(max_voters_per_edit=100, collect_events=False))
        assert 0.0 <= res.summary["shared_files"] <= 1.0

    def test_tiny_vote_cap(self):
        res = run_simulation(cfg(max_voters_per_edit=1, collect_events=False))
        assert 0.0 <= res.summary["shared_files"] <= 1.0
