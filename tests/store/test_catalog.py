"""Tests for the self-documenting scenario catalog (docs/SCENARIOS.md)."""

from pathlib import Path

import pytest

from repro.store.catalog import pack_axes, pack_grid_size, scenario_catalog_markdown
from repro.store.compose import iter_modifiers
from repro.store.registry import get_scenario, iter_scenarios

REPO_ROOT = Path(__file__).resolve().parents[2]
SCENARIOS_MD = REPO_ROOT / "docs" / "SCENARIOS.md"


class TestDerivedFacts:
    def test_axes_of_known_packs(self):
        assert pack_axes(get_scenario("paper/fig3")) == ("incentives_enabled",)
        assert pack_axes(get_scenario("churn/storm")) == ("join_rate", "leave_rate")
        assert pack_axes(get_scenario("base/default")) == ()

    def test_single_variant_modifier_fields_are_not_axes(self):
        # sybil-storm fixes the sybil knobs (one variant) and varies churn.
        assert pack_axes(get_scenario("adversary/sybil-storm")) == (
            "join_rate",
            "leave_rate",
        )

    def test_grid_sizes(self):
        assert pack_grid_size(get_scenario("paper/fig3")) == 2
        assert pack_grid_size(get_scenario("base/default")) == 1
        assert pack_grid_size(get_scenario("stress/churn-overlay")) == 3


class TestMarkdown:
    def test_every_pack_and_modifier_listed(self):
        md = scenario_catalog_markdown()
        for pack in iter_scenarios():
            assert f"`{pack.name}`" in md
        for mod in iter_modifiers():
            assert f"`{mod.name}`" in md

    def test_deterministic(self):
        assert scenario_catalog_markdown() == scenario_catalog_markdown()

    def test_at_least_18_packs(self):
        assert len(iter_scenarios()) >= 18

    def test_committed_catalog_is_fresh(self):
        """docs/SCENARIOS.md must match a fresh rendering (CI-enforced).

        Regenerate with::

            PYTHONPATH=src python -m repro.store.cli scenarios --markdown > docs/SCENARIOS.md
        """
        assert SCENARIOS_MD.exists(), "docs/SCENARIOS.md missing"
        committed = SCENARIOS_MD.read_text(encoding="utf-8")
        if committed != scenario_catalog_markdown():
            pytest.fail(
                "docs/SCENARIOS.md is stale; regenerate with "
                "`PYTHONPATH=src python -m repro.store.cli scenarios "
                "--markdown > docs/SCENARIOS.md`"
            )


class TestCliMarkdown:
    def test_markdown_flag_emits_catalog(self, capsys):
        from repro.store.cli import main

        assert main(["scenarios", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out == scenario_catalog_markdown()

    def test_markdown_rejects_tag_filter(self):
        from repro.store.cli import main

        with pytest.raises(SystemExit, match="cannot be combined"):
            main(["scenarios", "--markdown", "--tag", "adversary"])
