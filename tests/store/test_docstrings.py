"""The public store/sweep API docstrings carry *runnable* examples.

The docstring pass (enforced by ruff's pydocstyle rules for
``src/repro/store/`` and ``src/repro/sim/sweep.py``) promises examples
that actually execute; these tests run them with :mod:`doctest` so a
refactor that breaks an example breaks the build, not the reader.

Modules whose examples mutate global registries (``register_scenario``'s
example would add a demo pack and invalidate the generated catalog) are
documented with plain code blocks instead and are deliberately absent
here.
"""

import doctest

import pytest

import repro.obs.metrics
import repro.obs.tracer
import repro.sim.engine
import repro.sim._sweep
import repro.store.compose
import repro.store._runstore

MODULES = [
    repro.store._runstore,  # RunStore: put/get/stats walkthrough
    repro.store.compose,  # compose_scenarios: churn/storm cross product
    repro.sim._sweep,  # run_sweep: serial two-seed grid
    repro.sim.engine,  # run_replicates: batched three-seed ensemble
    repro.obs.tracer,  # tracing(): span aggregation walkthrough
    repro.obs.metrics,  # MetricsRegistry: counter/gauge/histogram exposition
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_docstring_examples_run(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0
