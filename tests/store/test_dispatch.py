"""Tests for store-coordinated distributed sweep dispatch.

The lease protocol and the drain loop are exercised with a lightweight
in-memory fake store (so the concurrency tests are sleep-bound, not
compute-bound, and behave identically on 1-core CI boxes), plus one
real-subprocess crash-recovery test against an actual :class:`RunStore`.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.sim.config import SimulationConfig
from repro.store.dispatch import (
    DEFAULT_DISPATCH_LANE_WIDTH,
    DispatchTask,
    Lease,
    LeaseBoard,
    LeaseLost,
    StoreDispatcher,
    default_owner_id,
    plan_dispatch_tasks,
    publish_sweep_grid,
    task_key,
)
from repro.store.hashing import config_hash
from repro.store._runstore import RunStore


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=8, n_articles=2, founders_per_article=2,
        training_steps=5, eval_steps=5, seed=seed, **kw,
    )


class FakeStore:
    """Just enough RunStore surface for the dispatcher: a hash set."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._hashes = set()
        self._lock = threading.Lock()

    def refresh(self):
        return 0

    def contains_hash(self, h):
        with self._lock:
            return h in self._hashes

    def add(self, h):
        with self._lock:
            self._hashes.add(h)


def fake_tasks(n_tasks, lanes=1, prefix="t"):
    """Claimable tasks over string pseudo-configs (run_task is ours)."""
    tasks = []
    for i in range(n_tasks):
        hashes = tuple(f"{prefix}{i}-{j}" for j in range(lanes))
        tasks.append(
            DispatchTask(key=task_key(hashes), configs=hashes, config_hashes=hashes)
        )
    return tasks


def drain(dispatcher, store, tasks, delay=0.0, computed=None):
    """Drain with a sleep-task runner; returns (stats, computed list)."""
    computed = computed if computed is not None else []

    def run_task(cfgs, task):
        if delay:
            time.sleep(delay)
        return [f"result-{c}" for c in cfgs]

    def on_computed(cfg, h, result):
        store.add(h)
        computed.append(h)

    stats = dispatcher.drain(tasks, run_task, on_computed, lambda cfg, h: None)
    return stats, computed


class TestTaskKey:
    def test_order_independent(self):
        assert task_key(["a", "b", "c"]) == task_key(["c", "a", "b"])

    def test_distinct_sets_distinct_keys(self):
        assert task_key(["a", "b"]) != task_key(["a", "c"])
        assert task_key(["ab"]) != task_key(["a", "b"])

    def test_owner_ids_unique(self):
        assert default_owner_id() != default_owner_id()


class TestPlanning:
    def test_partition_is_deterministic_and_complete(self):
        grid = [tiny(seed=s) for s in range(7)]
        t1 = plan_dispatch_tasks(grid, lane_width=2)
        t2 = plan_dispatch_tasks(list(grid), lane_width=2)
        assert [t.key for t in t1] == [t.key for t in t2]
        assert all(len(t.configs) <= 2 for t in t1)
        covered = {h for t in t1 for h in t.config_hashes}
        assert covered == {config_hash(c) for c in grid}

    def test_lane_width_changes_partition(self):
        grid = [tiny(seed=s) for s in range(4)]
        wide = plan_dispatch_tasks(grid, lane_width=4)
        narrow = plan_dispatch_tasks(grid, lane_width=1)
        assert len(narrow) == 4
        assert len(wide) < len(narrow)

    def test_rejects_event_configs(self):
        with pytest.raises(ValueError, match="event-collecting"):
            plan_dispatch_tasks([tiny(collect_events=True)])

    def test_rejects_bad_lane_width(self):
        with pytest.raises(ValueError):
            plan_dispatch_tasks([tiny()], lane_width=0)

    def test_publish_dedups_and_skips_event_configs(self, tmp_path):
        store = RunStore(tmp_path)
        configs = [tiny(seed=0), tiny(seed=1), tiny(seed=0),
                   tiny(seed=2, collect_events=True)]
        key, grid = publish_sweep_grid(store, configs, lane_width=2)
        assert grid == [tiny(seed=0), tiny(seed=1)]
        manifest = store.get_grid(key)
        assert manifest is not None
        assert list(manifest.configs) == grid
        assert manifest.lane_width == 2
        # Republishing is idempotent: same key, one manifest.
        key2, _ = publish_sweep_grid(store, configs, lane_width=2)
        assert key2 == key
        assert store.grid_keys() == [key]

    def test_publish_default_lane_width(self, tmp_path):
        store = RunStore(tmp_path)
        key, _ = publish_sweep_grid(store, [tiny()])
        assert store.get_grid(key).lane_width == DEFAULT_DISPATCH_LANE_WIDTH


class TestLeaseBoard:
    def test_claim_is_exclusive(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        b = LeaseBoard(tmp_path, owner="b")
        lease = a.claim("k1", ("h1",))
        assert lease is not None and lease.owner == "a"
        assert b.claim("k1") is None
        got = b.read("k1")
        assert got.owner == "a" and got.config_hashes == ("h1",)

    def test_release_frees_key_for_others(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        b = LeaseBoard(tmp_path, owner="b")
        lease = a.claim("k1")
        assert a.release(lease) is True
        assert b.claim("k1") is not None

    def test_release_refuses_foreign_lease(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        b = LeaseBoard(tmp_path, owner="b")
        lease = a.claim("k1")
        assert b.release(lease) is False
        assert a.read("k1").owner == "a"

    def test_renew_advances_heartbeat(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        lease = a.claim("k1")
        renewed = a.renew(lease)
        assert renewed.heartbeat_at >= lease.heartbeat_at
        assert a.read("k1").heartbeat_at == pytest.approx(
            renewed.heartbeat_at
        )

    def test_renew_after_reclaim_raises_lease_lost(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        b = LeaseBoard(tmp_path, owner="b")
        lease = a.claim("k1")
        assert b.reclaim("k1") is True
        b.claim("k1")
        with pytest.raises(LeaseLost):
            a.renew(lease)
        # ...and the usurper's claim is untouched.
        assert a.read("k1").owner == "b"

    def test_reclaim_missing_lease_loses(self, tmp_path):
        assert LeaseBoard(tmp_path).reclaim("nope") is False

    def test_reclaim_race_has_one_winner(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        a.claim("k1")
        boards = [LeaseBoard(tmp_path, owner=f"w{i}") for i in range(4)]
        wins = [board.reclaim("k1") for board in boards]
        assert wins.count(True) == 1

    def test_staleness_math(self):
        lease = Lease(key="k", owner="o", created_at=100.0,
                      heartbeat_at=100.0, expiry_s=30.0)
        assert not lease.is_stale(now=120.0)
        assert lease.is_stale(now=131.0)
        assert lease.age_s(now=110.0) == pytest.approx(10.0)

    def test_corrupt_lease_file_reads_as_mtime_lease(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="a", expiry_s=5.0)
        path = board.claims_dir / "k1.lease"
        path.write_text("{torn garbag", encoding="utf-8")
        lease = board.read("k1")
        assert lease.owner == "<unreadable>"
        assert lease.expiry_s == 5.0
        assert not lease.is_stale()  # mtime is now
        assert lease.is_stale(now=time.time() + 6.0)

    def test_active_lists_claims(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="a")
        board.claim("k2")
        board.claim("k1")
        assert [lease.key for lease in board.active()] == ["k1", "k2"]

    def test_rejects_nonpositive_expiry(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseBoard(tmp_path, expiry_s=0.0)


class TestStoreDispatcher:
    def test_single_drain_computes_everything(self, tmp_path):
        store = FakeStore(tmp_path)
        tasks = fake_tasks(3, lanes=2)
        stats, computed = drain(StoreDispatcher(store), store, tasks)
        assert stats.computed == 6
        assert stats.claimed == 3 == stats.released
        assert stats.served == 0
        assert sorted(computed) == sorted(h for t in tasks for h in t.config_hashes)
        assert stats.computed_hashes == computed
        # Every lease was cleaned up.
        assert StoreDispatcher(store).board.active() == []

    def test_prestored_hashes_are_served_not_computed(self, tmp_path):
        store = FakeStore(tmp_path)
        tasks = fake_tasks(2, lanes=2)
        for h in tasks[0].config_hashes:
            store.add(h)
        served = []
        dispatcher = StoreDispatcher(store)

        def on_computed(cfg, h, result):
            store.add(h)

        stats = dispatcher.drain(
            tasks,
            lambda cfgs, task: [None] * len(cfgs),
            on_computed,
            lambda cfg, h: served.append(h),
        )
        assert stats.served == 2 and sorted(served) == sorted(tasks[0].config_hashes)
        assert stats.computed == 2

    def test_two_dispatchers_cooperate_without_duplicates(self, tmp_path):
        """Two concurrent drains split the work and overlap in time.

        Sleep-bound tasks, so the cooperative wall-clock gain shows even
        on a single-core machine: 8 tasks x 0.15 s is 1.2 s serial;
        two cooperating workers must land well under that.
        """
        store = FakeStore(tmp_path)
        tasks = fake_tasks(8)
        done: dict[str, list] = {"a": [], "b": []}
        errs = []

        def worker(name):
            dispatcher = StoreDispatcher(
                store, owner=name, expiry_s=30.0, poll_interval_s=0.02
            )
            try:
                drain(dispatcher, store, tasks, delay=0.15, computed=done[name])
            except Exception as exc:  # pragma: no cover - failure path
                errs.append(exc)

        start = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        assert not errs
        a, b = set(done["a"]), set(done["b"])
        assert not (a & b), f"duplicate computation: {a & b}"
        assert a | b == {h for t in tasks for h in t.config_hashes}
        # Both actually participated, and the drain was genuinely
        # cooperative (well under the 1.2 s serial cost).
        assert a and b
        assert elapsed < 0.6 * 8 * 0.15 + 0.25

    def test_stale_lease_is_reclaimed_and_recomputed(self, tmp_path):
        store = FakeStore(tmp_path)
        tasks = fake_tasks(2)
        # A "crashed" worker claimed task 0 and will never heartbeat.
        dead = LeaseBoard(store.root, owner="dead", expiry_s=0.2)
        assert dead.claim(tasks[0].key, tasks[0].config_hashes) is not None
        dispatcher = StoreDispatcher(store, expiry_s=0.2, poll_interval_s=0.05)
        stats, computed = drain(dispatcher, store, tasks)
        assert stats.computed == 2
        assert stats.expired >= 1 and stats.reclaimed >= 1
        assert set(computed) == {h for t in tasks for h in t.config_hashes}

    def test_heartbeat_renews_during_long_task(self, tmp_path):
        store = FakeStore(tmp_path)
        dispatcher = StoreDispatcher(
            store, expiry_s=10.0, heartbeat_interval_s=0.05
        )
        stats, _ = drain(dispatcher, store, fake_tasks(1), delay=0.4)
        assert stats.renewed >= 2
        assert stats.lease_lost == 0

    def test_lost_lease_counted_but_work_completes(self, tmp_path):
        store = FakeStore(tmp_path)
        tasks = fake_tasks(1)
        dispatcher = StoreDispatcher(
            store, owner="victim", expiry_s=10.0, heartbeat_interval_s=0.05
        )
        usurper = LeaseBoard(store.root, owner="usurper", expiry_s=10.0)

        def run_task(cfgs, task):
            # Steal the lease mid-computation, as a reclaim would.
            assert usurper.reclaim(task.key)
            usurper.claim(task.key)
            time.sleep(0.2)  # let a renew attempt discover the theft
            return [None] * len(cfgs)

        stats = dispatcher.drain(
            tasks, run_task, lambda cfg, h, r: store.add(h), lambda cfg, h: None
        )
        assert stats.computed == 1
        assert stats.lease_lost == 1
        # The victim never releases the usurper's lease.
        assert usurper.read(tasks[0].key).owner == "usurper"

    def test_failed_task_releases_lease_and_raises(self, tmp_path):
        store = FakeStore(tmp_path)
        tasks = fake_tasks(1)
        dispatcher = StoreDispatcher(store)

        def boom(cfgs, task):
            raise RuntimeError("engine exploded")

        with pytest.raises(RuntimeError, match="engine exploded"):
            dispatcher.drain(
                tasks, boom, lambda cfg, h, r: store.add(h), lambda cfg, h: None
            )
        # Released, not leaked: survivors can retry immediately.
        assert dispatcher.board.active() == []

    def test_waits_for_peer_results(self, tmp_path):
        """All tasks leased elsewhere: the drain polls, then completes
        once the peer's results land in the store."""
        store = FakeStore(tmp_path)
        tasks = fake_tasks(2)
        peer = LeaseBoard(store.root, owner="peer", expiry_s=30.0)
        for t in tasks:
            peer.claim(t.key, t.config_hashes)

        def land_results():
            time.sleep(0.2)
            for t in tasks:
                for h in t.config_hashes:
                    store.add(h)

        thread = threading.Thread(target=land_results)
        thread.start()
        dispatcher = StoreDispatcher(store, poll_interval_s=0.02)
        served = []
        stats = dispatcher.drain(
            tasks,
            lambda cfgs, task: [None] * len(cfgs),
            lambda cfg, h, r: store.add(h),
            lambda cfg, h: served.append(h),
        )
        thread.join()
        assert stats.computed == 0
        assert stats.served == 2 and len(served) == 2


class TestCrashRecovery:
    def test_killed_worker_lease_expires_and_grid_completes(self, tmp_path):
        """A SIGKILLed claimant's task is reclaimed and recomputed.

        The subprocess claims a real lease (as a worker that dies
        mid-task would hold one), signals readiness, and hangs; the
        parent kills it dead — no cleanup handlers run — then drains the
        grid with a short expiry.  The grid must complete, the corpse's
        task must be reclaimed, and the store must end with exactly one
        record per config.
        """
        from repro.sim._sweep import run_sweep
        from repro.store.dispatch import last_dispatch_stats

        store = RunStore(tmp_path / "store")
        configs = [tiny(seed=s) for s in range(3)]
        key, grid = publish_sweep_grid(store, configs, lane_width=1)
        victim_task = plan_dispatch_tasks(grid, lane_width=1)[0]

        script = (
            "import sys, time\n"
            "from repro.store.dispatch import LeaseBoard\n"
            "board = LeaseBoard(sys.argv[1], owner='doomed')\n"
            "assert board.claim(sys.argv[2]) is not None\n"
            "print('claimed', flush=True)\n"
            "time.sleep(120)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(store.root), victim_task.key],
            stdout=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": str(Path(__file__).parents[2] / "src")},
        )
        try:
            assert proc.stdout.readline().strip() == "claimed"
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        results = run_sweep(
            configs,
            backend="serial",
            store=store,
            dispatch="store",
            lane_width=1,
            lease_expiry_s=0.5,
        )
        stats = last_dispatch_stats()
        assert stats.expired >= 1 and stats.reclaimed >= 1
        assert stats.computed == 3
        assert [r.config for r in results] == configs
        # Exactly one index record per config: the reclaim recomputed,
        # it did not double-book.
        index_hashes = [
            json.loads(line)["config_hash"]
            for line in (store.root / "index.jsonl").read_text().splitlines()
        ]
        assert sorted(index_hashes) == sorted(config_hash(c) for c in configs)
        assert all(store.contains(c) for c in configs)
        # No leases left behind.
        assert LeaseBoard(store.root).active() == []
