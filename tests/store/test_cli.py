"""Tests for the unified ``repro`` CLI."""

import pytest

import repro.sim._sweep as sweep_mod
from repro.store.cli import build_parser, main
from repro.store._runstore import RunStore

#: CLI overrides shrinking any scenario to a smoke-test horizon.
TINY_SETS = [
    "--set", "n_agents=20",
    "--set", "n_articles=5",
    "--set", "training_steps=30",
    "--set", "eval_steps=20",
]


def run_tiny(store_dir, scenario="capacity/heterogeneous", extra=()):
    return main(
        [
            "run", scenario,
            "--fast", "--seeds", "1",
            "--backend", "serial",
            "--store", str(store_dir),
            *TINY_SETS,
            *extra,
        ]
    )


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        for argv in (
            ["scenarios"],
            ["run", "paper/fig3"],
            ["sweep"],
            ["profile", "base/default"],
            ["ls"],
            ["report"],
            ["trace", "base/default"],
            ["stats"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_set_field(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--set", "no_such_field=1", "--store", str(tmp_path)])

    def test_bad_set_syntax(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--set", "n_agents", "--store", str(tmp_path)])

    def test_structured_fields_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--set", "mix=1", "--store", str(tmp_path)])

    def test_special_float_values_parse(self):
        from repro.store.cli import _parse_value

        assert _parse_value("inf") == float("inf")
        assert _parse_value("-inf") == float("-inf")
        assert _parse_value("NaN") != _parse_value("NaN")  # genuine nan
        assert _parse_value("0.5") == 0.5
        assert _parse_value("karma") == "karma"

    def test_where_rejects_non_leaf_structured_field(self, tmp_path):
        with pytest.raises(SystemExit, match="structured field"):
            main(["report", "--store", str(tmp_path), "--where", "mix=0.5"])

    def test_seeds_and_seed_axis_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "sweep",
                    "--seeds", "5",
                    "--set", "seed=1,2",
                    "--store", str(tmp_path),
                ]
            )


class TestScenarios:
    def test_lists_packs(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "paper/fig3" in out
        assert "schemes/shootout" in out

    def test_tag_filter(self, capsys):
        assert main(["scenarios", "--tag", "churn"]) == 0
        out = capsys.readouterr().out
        assert "churn/storm" in out
        assert "paper/fig3" not in out

    def test_lists_modifiers(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "+adversary/sybil" in out
        assert "+churn/storm" in out


class TestRun:
    def test_run_populates_store(self, tmp_path, capsys):
        assert run_tiny(tmp_path) == 0
        out = capsys.readouterr().out
        assert "0 hits / 3 misses" in out
        assert len(RunStore(tmp_path)) == 3

    def test_run_composed_spec(self, tmp_path, capsys):
        # base/default (1 config/seed) x churn/spike (1 variant) = 1 run.
        assert run_tiny(tmp_path, scenario="base/default+churn/spike") == 0
        out = capsys.readouterr().out
        assert "base/default+churn/spike: 1 configs" in out
        assert len(RunStore(tmp_path)) == 1

    def test_run_unknown_modifier_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown modifier"):
            run_tiny(tmp_path, scenario="base/default+no/such")

    def test_second_run_all_cache_hits(self, tmp_path, capsys, monkeypatch):
        run_tiny(tmp_path)
        capsys.readouterr()
        monkeypatch.setattr(
            sweep_mod, "_worker", _raise_worker, raising=True
        )  # any execution would blow up
        assert run_tiny(tmp_path) == 0
        out = capsys.readouterr().out
        assert "3 hits / 0 misses" in out

    def test_unknown_scenario_clean_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["run", "no/such", "--store", str(tmp_path)])

    def test_no_store_flag(self, tmp_path, capsys):
        assert run_tiny(tmp_path, extra=("--no-store",)) == 0
        out = capsys.readouterr().out
        assert "cache:" not in out
        assert len(RunStore(tmp_path)) == 0


class TestSweep:
    def test_grid_expansion(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "--seeds", "1",
                "--backend", "serial",
                "--store", str(tmp_path),
                "--quiet",
                *TINY_SETS,
                "--set", "scheme=karma,tft",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scheme=karma" in out
        assert "scheme=tft" in out
        assert len(RunStore(tmp_path)) == 2

    def test_lane_batch_flag_shares_cache_with_plain_sweep(self, tmp_path, capsys):
        """--lane-batch executes once, then the unbatched spelling is all
        cache hits (the two spellings address identical store entries)."""
        argv = [
            "sweep",
            "--seeds", "1",
            "--backend", "serial",
            "--store", str(tmp_path),
            "--quiet",
            *TINY_SETS,
            "--set", "t_eval=0.5,1.0",
        ]
        assert main(argv + ["--lane-batch"]) == 0
        out = capsys.readouterr().out
        assert "0 hits / 2 misses" in out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 hits / 0 misses" in out


class TestProfile:
    def test_profile_prints_hot_functions(self, capsys):
        rc = main(
            [
                "profile", "base/default",
                "--fast", "--limit", "5",
                *TINY_SETS,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "profiling base/default" in out
        assert "cumulative time" in out
        assert "run_simulation" in out

    def test_profile_sort_key_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "base/default", "--sort", "no-such-key"]
            )

    def test_profile_unknown_scenario_clean_error(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["profile", "no/such"])


class TestLsReport:
    """`ls` and `report` must render without executing any simulation."""

    @pytest.fixture()
    def populated(self, tmp_path, capsys):
        run_tiny(tmp_path)
        capsys.readouterr()
        return tmp_path

    def test_ls_renders_runs(self, populated, capsys, monkeypatch):
        monkeypatch.setattr(sweep_mod, "_worker", _raise_worker)
        monkeypatch.setattr("repro.sim.engine.run_simulation", _raise_worker)
        assert main(["ls", "--store", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "3 runs" in out
        assert "shared_files=" in out

    def test_ls_empty_store(self, tmp_path, capsys):
        assert main(["ls", "--store", str(tmp_path / "empty")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_report_aggregates(self, populated, capsys, monkeypatch):
        monkeypatch.setattr(sweep_mod, "_worker", _raise_worker)
        monkeypatch.setattr("repro.sim.engine.run_simulation", _raise_worker)
        assert main(["report", "--store", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "capacity_sigma" in out
        assert "shared_files" in out

    def test_report_where_filter(self, populated, capsys):
        rc = main(
            ["report", "--store", str(populated), "--where", "capacity_sigma=0.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "base" in out  # single group left after filtering

    def test_report_custom_metric(self, populated, capsys):
        rc = main(
            ["report", "--store", str(populated), "--metric", "utility_sharing"]
        )
        assert rc == 0
        assert "utility_sharing" in capsys.readouterr().out


class TestTrace:
    def trace_tiny(self, store_dir, extra=()):
        return main(
            [
                "trace", "base/default",
                "--fast",
                "--store", str(store_dir),
                *TINY_SETS,
                *extra,
            ]
        )

    def test_trace_prints_breakdown_and_persists(self, tmp_path, capsys):
        assert self.trace_tiny(tmp_path) == 0
        out = capsys.readouterr().out
        assert "tracing base/default" in out
        assert "edit_vote" in out
        assert "phase coverage" in out
        store = RunStore(tmp_path)
        assert len(store) == 1  # the traced run itself is cached
        (key,) = store.telemetry_hashes()
        payload = store.get_telemetry(key)
        assert payload["meta"]["scenario"] == "base/default"
        assert any(
            s["name"] == "phase/edit_vote" for s in payload["spans"]
        )

    def test_trace_json_is_machine_readable(self, tmp_path, capsys):
        import json

        assert self.trace_tiny(tmp_path, extra=("--json",)) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config_hash"] == RunStore(tmp_path).telemetry_hashes()[0]
        rows = doc["breakdown"]["phases"]
        assert {r["name"] for r in rows} >= {"phase/act", "phase/edit_vote"}
        assert doc["breakdown"]["coverage"] >= 0.95

    def test_trace_jsonl_exports_events(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        assert self.trace_tiny(tmp_path, extra=("--jsonl", str(path))) == 0
        lines = path.read_text("utf-8").splitlines()
        assert lines
        event = json.loads(lines[0])
        assert set(event) == {"name", "start_s", "duration_s"}

    def test_trace_no_store(self, tmp_path, capsys):
        assert self.trace_tiny(tmp_path, extra=("--no-store",)) == 0
        store = RunStore(tmp_path)
        assert len(store) == 0
        assert store.telemetry_hashes() == []

    def test_trace_unknown_scenario_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["trace", "no/such", "--store", str(tmp_path)])


class TestStats:
    def test_stats_empty_store(self, tmp_path, capsys):
        assert main(["stats", "--store", str(tmp_path)]) == 0
        assert "no telemetry" in capsys.readouterr().out

    def test_stats_aggregates_without_simulating(self, tmp_path, capsys, monkeypatch):
        assert TestTrace().trace_tiny(tmp_path) == 0
        capsys.readouterr()
        monkeypatch.setattr(sweep_mod, "_worker", _raise_worker)
        monkeypatch.setattr("repro.sim.engine.run_simulation", _raise_worker)
        assert main(["stats", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "phase/edit_vote" in out
        assert "1 telemetry artifacts" in out

    def test_stats_json(self, tmp_path, capsys):
        import json

        assert TestTrace().trace_tiny(tmp_path) == 0
        capsys.readouterr()
        assert main(["stats", "--store", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"] == 1
        assert any(row["name"] == "engine/train" for row in doc["spans"])


class TestDispatchCLI:
    SWEEP_TINY = [
        "sweep", "--fast", "--seeds", "1", "--backend", "serial",
        "--set", "n_agents=8,10", "--set", "n_articles=2",
        "--set", "founders_per_article=2",
        "--set", "training_steps=5", "--set", "eval_steps=5",
    ]

    def test_sweep_worker_registered(self):
        args = build_parser().parse_args(["sweep-worker", "rs"])
        assert callable(args.func)

    def test_dispatch_store_requires_store(self, tmp_path):
        with pytest.raises(SystemExit, match="dispatch=store"):
            main([*self.SWEEP_TINY, "--dispatch", "store", "--no-store",
                  "--store", str(tmp_path)])

    def test_publish_only_requires_store(self, tmp_path):
        with pytest.raises(SystemExit, match="publish-only"):
            main([*self.SWEEP_TINY, "--publish-only", "--no-store",
                  "--store", str(tmp_path)])

    def test_publish_only_writes_manifest_without_running(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr(sweep_mod, "_worker", _raise_worker)
        monkeypatch.setattr(sweep_mod, "_task_worker", _raise_worker)
        assert main([*self.SWEEP_TINY, "--publish-only",
                     "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "published grid" in out
        store = RunStore(tmp_path)
        assert len(store.grid_keys()) == 1
        assert len(store) == 0  # nothing computed

    def test_dispatch_sweep_then_worker_finds_nothing_left(
        self, tmp_path, capsys
    ):
        assert main([*self.SWEEP_TINY, "--dispatch", "store",
                     "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dispatch:" in out and "computed" in out
        assert main(["sweep-worker", str(tmp_path)]) == 0
        assert "no undrained grids" in capsys.readouterr().out

    def test_sweep_worker_drains_published_grid(self, tmp_path, capsys):
        assert main([*self.SWEEP_TINY, "--publish-only",
                     "--store", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["sweep-worker", str(tmp_path), "--summary-json",
                     "--quiet"]) == 0
        import json as _json

        summary = _json.loads(capsys.readouterr().out.splitlines()[-1])
        assert summary["computed"] == 2
        store = RunStore(tmp_path)
        assert len(store) == 2

    def test_sweep_worker_trace_persists_grid_telemetry(self, tmp_path, capsys):
        assert main([*self.SWEEP_TINY, "--publish-only",
                     "--store", str(tmp_path)]) == 0
        store = RunStore(tmp_path)
        key = store.grid_keys()[0]
        assert main(["sweep-worker", str(tmp_path), "--trace", "--quiet"]) == 0
        telemetry = store.get_telemetry(key)
        assert telemetry is not None
        assert telemetry["meta"]["kind"] == "sweep-worker"
        assert any(
            s["name"].startswith("dispatch/") for s in telemetry["spans"]
        )

    def test_sweep_worker_unknown_grid_errors(self, tmp_path):
        RunStore(tmp_path)
        with pytest.raises(SystemExit, match="no grid"):
            main(["sweep-worker", str(tmp_path), "--grid", "feedbeef"])


def _raise_worker(*args, **kwargs):  # pragma: no cover - must never run
    raise AssertionError("a simulation executed where none was allowed")


class TestKernelBackendCLI:
    """The --executor/--backend split plus the two backend subcommands."""

    @pytest.fixture(autouse=True)
    def _clean_backend_cache(self):
        from repro.sim.backends import reset_backend_cache

        reset_backend_cache()
        yield
        reset_backend_cache()

    def test_new_subcommands_registered(self):
        parser = build_parser()
        for argv in (["backends"], ["verify-backend"]):
            assert callable(parser.parse_args(argv).func)

    def test_backends_lists_availability(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out and "compiled" in out
        assert "available" in out

    def test_backends_json(self, capsys):
        import json as _json

        assert main(["backends", "--json"]) == 0
        infos = _json.loads(capsys.readouterr().out)
        assert {i["name"] for i in infos} == {"compiled", "numpy"}
        for info in infos:
            assert {"name", "available", "warmed"} <= set(info)

    def test_backends_table_after_fallback_keeps_registered_names(
        self, capsys, monkeypatch
    ):
        from repro.sim.backends import get_backend
        from repro.sim.backends.compiled import numba_available

        if numba_available():
            pytest.skip("fallback path needs numba absent")
        monkeypatch.delenv("REPRO_COMPILED_PUREPY", raising=False)
        # Cache the fallback singleton under "compiled", as a run would.
        with pytest.warns(RuntimeWarning):
            get_backend("compiled")
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        # Still one row per *registered* name, not two "numpy" rows.
        assert sum(line.startswith("compiled") for line in out.splitlines()) == 1
        assert sum(line.startswith("numpy") for line in out.splitlines()) == 1
        assert "unavailable" in out

    def test_verify_backend_passes(self, capsys, monkeypatch):
        # Keep the forced REPRO_COMPILED_PUREPY (set when numba is
        # absent) scoped to this test.
        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        from repro.sim.backends import reset_backend_cache

        reset_backend_cache()
        assert main(["verify-backend", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 4
        assert "bit-identical" in out

    def test_deprecated_backend_executor_spelling(self, tmp_path, capsys):
        assert run_tiny(tmp_path) == 0  # run_tiny still uses --backend serial
        err = capsys.readouterr().err
        assert "deprecated" in err and "--executor serial" in err

    def test_executor_flag_replaces_old_spelling(self, tmp_path, capsys):
        assert main([
            "run", "capacity/heterogeneous",
            "--fast", "--seeds", "1",
            "--executor", "serial",
            "--store", str(tmp_path),
            *TINY_SETS,
        ]) == 0
        assert "deprecated" not in capsys.readouterr().err

    def test_run_kernel_backend_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        from repro.sim.backends import reset_backend_cache

        reset_backend_cache()
        assert main([
            "run", "capacity/heterogeneous",
            "--fast", "--seeds", "1",
            "--executor", "serial", "--backend", "compiled",
            "--store", str(tmp_path),
            *TINY_SETS,
        ]) == 0
        # Hash-neutral: re-running on the reference backend is all cache hits.
        capsys.readouterr()
        assert run_tiny(tmp_path) == 0
        assert "0 misses" in capsys.readouterr().out

    def test_profile_backend_flag(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        from repro.sim.backends import reset_backend_cache

        reset_backend_cache()
        assert main([
            "profile", "base/default", "--fast", "--limit", "3",
            "--backend", "compiled", *TINY_SETS[:4],
            "--set", "training_steps=10", "--set", "eval_steps=5",
        ]) == 0
        out = capsys.readouterr().out
        assert "warm-up" in out

    def test_trace_backend_records_compile_span(self, tmp_path, capsys, monkeypatch):
        import json as _json

        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        from repro.sim.backends import reset_backend_cache

        reset_backend_cache()
        assert main([
            "trace", "base/default", "--fast", "--no-store", "--json",
            "--backend", "compiled",
            "--store", str(tmp_path), *TINY_SETS,
        ]) == 0
        payload = _json.loads(capsys.readouterr().out)
        names = {s["name"] for s in payload["telemetry"]["spans"]}
        assert "backend/compile" in names
