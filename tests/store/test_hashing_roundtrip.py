"""Property-based round-trip tests for the config hashing layer.

The service's dedup story — duplicate HTTP submissions, in-flight
joining, store cache hits — rests on one invariant::

    config_hash(config_from_dict(canonical_config_dict(cfg))) == config_hash(cfg)

for *every* expressible config, including the awkward corners: nested
dataclasses (constants, mix, scale), float sentinels (inf/-inf/nan),
integral floats that canonicalize to JSON ints, and dotted ``scale.*``
updates.  A seeded generator draws hundreds of valid random configs and
pushes each through the full wire cycle (canonical dict -> JSON text ->
parsed dict -> revived config), exactly what a config travels through
the HTTP submit path.
"""

import dataclasses
import json
import random

from repro.agents.population import PopulationMix
from repro.core.params import (
    ContributionParams,
    PaperConstants,
    ReputationParams,
    ServiceParams,
    UtilityParams,
)
from repro.core.reputation import REPUTATION_FUNCTIONS
from repro.sim.config import SimulationConfig
from repro.store.hashing import (
    canonical_config_dict,
    canonical_json,
    config_from_dict,
    config_hash,
)

N_CONFIGS = 300

_SCHEMES = ("auto", "reputation", "none", "tft", "karma")
_OVERLAYS = ("full", "random", "smallworld", "scalefree")


def _eighths(rng: random.Random) -> PopulationMix:
    """A random mix in exact eighths, so the fractions sum to exactly 1."""
    a = rng.randint(0, 8)
    b = rng.randint(0, 8 - a)
    return PopulationMix(
        rational=a / 8, altruistic=b / 8, irrational=(8 - a - b) / 8
    )


def _maybe_integral(rng: random.Random, lo: float, hi: float) -> float:
    """A float in (lo, hi]; sometimes exactly integral (the int-collapse
    corner: canonical JSON serializes 2.0 as 2)."""
    if rng.random() < 0.3:
        value = float(rng.randint(max(1, int(lo)), max(2, int(hi))))
        return min(max(value, lo), hi)
    return rng.uniform(lo, hi) or hi


def _constants(rng: random.Random) -> PaperConstants:
    def reputation() -> ReputationParams:
        r_min = rng.uniform(0.01, 0.4)
        return ReputationParams(
            g=_maybe_integral(rng, 1.0, 40.0),
            beta=rng.uniform(0.05, 2.0),
            r_min=r_min,
            r_max=rng.uniform(r_min + 0.05, 1.0),
        )

    rep_s = reputation()
    majority_min = rng.uniform(0.3, 0.7)
    return PaperConstants(
        reputation_s=rep_s,
        reputation_e=reputation(),
        contribution=ContributionParams(
            alpha_s=_maybe_integral(rng, 1.0, 5.0),
            beta_s=rng.uniform(0.5, 5.0),
            d_s=rng.uniform(0.0, 0.2),
            alpha_e=rng.uniform(0.5, 5.0),
            beta_e=rng.uniform(0.5, 5.0),
            d_e=rng.uniform(0.0, 0.2),
            retention=rng.uniform(0.5, 1.0),
        ),
        service=ServiceParams(
            # edit_threshold must clear the sharing scheme's r_min floor.
            edit_threshold=rng.uniform(rep_s.r_min + 0.01, 0.9),
            majority_min=majority_min,
            majority_max=rng.uniform(majority_min, 1.0),
            vote_punish_threshold=rng.randint(1, 20),
            edit_punish_threshold=rng.randint(1, 20),
        ),
        utility=UtilityParams(
            alpha=_maybe_integral(rng, 1.0, 10.0),
            beta=rng.uniform(0.01, 1.0),
            gamma=rng.uniform(0.01, 1.0),
            delta=_maybe_integral(rng, 1.0, 40.0),
            epsilon=rng.uniform(0.5, 10.0),
        ),
    )


def random_config(rng: random.Random) -> SimulationConfig:
    """One valid random config touching every structured corner."""
    t_train = rng.choice(
        [float("inf"), float("-inf"), float("nan"), rng.uniform(0.1, 10.0)]
    )
    cfg = SimulationConfig(
        n_agents=rng.randint(2, 500),
        mix=_eighths(rng),
        incentives_enabled=rng.random() < 0.5,
        scheme=rng.choice(_SCHEMES),
        constants=_constants(rng),
        reputation_fn_s=rng.choice(list(REPUTATION_FUNCTIONS)),
        reputation_fn_e=rng.choice(list(REPUTATION_FUNCTIONS)),
        karma_initial=_maybe_integral(rng, 0.0, 5.0),
        karma_floor=rng.uniform(0.001, 0.5),
        tft_optimistic_floor=rng.uniform(0.001, 0.5),
        tft_history_decay=rng.uniform(0.5, 1.0),
        n_states=rng.randint(1, 30),
        training_steps=rng.randint(0, 10_000),
        eval_steps=rng.randint(1, 5_000),
        t_train=t_train,
        t_eval=rng.choice([1.0, 2.0, float("inf"), rng.uniform(0.1, 5.0)]),
        learning_rate=rng.uniform(0.01, 1.0),
        discount=rng.uniform(0.0, 1.0),
        learn_during_eval=rng.random() < 0.5,
        n_articles=rng.randint(1, 100),
        founders_per_article=rng.randint(1, 10),
        download_probability=rng.choice([1.0, rng.uniform(0.0, 1.0)]),
        edit_attempt_prob=rng.uniform(0.0, 1.0),
        max_voters_per_edit=rng.randint(1, 30),
        min_voters_per_edit=rng.randint(1, 5),
        enforce_edit_threshold=rng.random() < 0.5,
        overlay_kind=rng.choice(_OVERLAYS),
        overlay_degree=rng.randint(2, 32),
        capacity_sigma=rng.choice([0.0, rng.uniform(0.0, 2.0)]),
        leave_rate=rng.uniform(0.0, 0.2),
        join_rate=rng.uniform(0.0, 0.2),
        whitewash_rate=rng.uniform(0.0, 0.2),
        collusion_fraction=rng.uniform(0.0, 1.0),
        collusion_ring_size=rng.randint(2, 10),
        sybil_fraction=rng.uniform(0.0, 1.0),
        sybil_rate=rng.uniform(0.0, 1.0),
        seed=rng.randint(0, 2**31),
        measure_window=rng.uniform(0.1, 1.0),
    )
    if rng.random() < 0.5:
        # Exercise the dotted scale.* update path the CLI and scenario
        # modifiers use, not just the ScaleConfig constructor.
        cfg = cfg.with_(**{
            "scale.sparse": rng.random() < 0.5,
            "scale.ledger_cap": rng.randint(1, 256),
            "scale.chunk_size": rng.randint(1, 65536),
            "scale.stream_metrics_threshold": rng.randint(2, 50_000),
        })
    return cfg


def _wire_cycle(cfg: SimulationConfig) -> SimulationConfig:
    """canonical dict -> JSON text -> parsed dict -> revived config."""
    return config_from_dict(json.loads(json.dumps(canonical_config_dict(cfg))))


class TestRoundTripProperty:
    def test_hash_survives_wire_cycle_for_hundreds_of_configs(self):
        rng = random.Random(0xC0FFEE)
        for i in range(N_CONFIGS):
            cfg = random_config(rng)
            revived = _wire_cycle(cfg)
            assert config_hash(revived) == config_hash(cfg), (
                f"config #{i} changed hash across the wire cycle:\n"
                f"{canonical_json(canonical_config_dict(cfg))}\nvs\n"
                f"{canonical_json(canonical_config_dict(revived))}"
            )

    def test_double_cycle_is_stable(self):
        rng = random.Random(1234)
        for _ in range(50):
            cfg = random_config(rng)
            once = _wire_cycle(cfg)
            twice = _wire_cycle(once)
            assert (canonical_json(canonical_config_dict(once))
                    == canonical_json(canonical_config_dict(twice)))

    def test_generator_is_deterministic(self):
        a = [config_hash(random_config(random.Random(7))) for _ in range(3)]
        b = [config_hash(random_config(random.Random(7))) for _ in range(3)]
        assert a == b

    def test_generator_covers_the_awkward_corners(self):
        """The generator must actually hit the cases this file is about."""
        import math

        rng = random.Random(0xC0FFEE)
        configs = [random_config(rng) for _ in range(N_CONFIGS)]
        assert any(math.isinf(c.t_train) for c in configs)
        assert any(math.isnan(c.t_train) for c in configs)
        assert any(
            math.isinf(c.t_train) and c.t_train < 0 for c in configs
        )
        assert any(c.t_eval == int(c.t_eval) for c in configs
                   if not math.isinf(c.t_eval))
        assert any(c.scale.sparse for c in configs)
        assert len({c.scheme for c in configs}) == len(_SCHEMES)
        assert any(c.mix.irrational > 0 for c in configs)

    def test_every_field_is_exercised_by_the_generator(self):
        """No silently-skipped fields: across the corpus every top-level
        field takes at least two distinct values (booleans included)."""
        rng = random.Random(99)
        corpus = [random_config(rng) for _ in range(100)]
        constant = ("collect_events",)  # storable configs only, by design
        for f in dataclasses.fields(SimulationConfig):
            values = {repr(getattr(c, f.name)) for c in corpus}
            if f.name in constant:
                assert values == {"False"}
            else:
                assert len(values) >= 2, f"generator never varies {f.name}"
