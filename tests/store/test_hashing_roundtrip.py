"""Property-based round-trip tests for the config hashing layer.

The service's dedup story — duplicate HTTP submissions, in-flight
joining, store cache hits — rests on one invariant::

    config_hash(config_from_dict(canonical_config_dict(cfg))) == config_hash(cfg)

for *every* expressible config, including the awkward corners: nested
dataclasses (constants, mix, scale), float sentinels (inf/-inf/nan),
integral floats that canonicalize to JSON ints, and dotted ``scale.*``
updates.  The seeded generator lives in :mod:`repro.sim.testing`
(shared with the backend-equivalence suite) and draws hundreds of valid
random configs; each goes through the full wire cycle (canonical dict ->
JSON text -> parsed dict -> revived config), exactly what a config
travels through the HTTP submit path.
"""

import dataclasses
import json
import random

from repro.sim.config import SimulationConfig
from repro.sim.testing import random_config
from repro.store.hashing import (
    canonical_config_dict,
    canonical_json,
    config_from_dict,
    config_hash,
)

N_CONFIGS = 300

_SCHEMES = ("auto", "reputation", "none", "tft", "karma")


def _wire_cycle(cfg: SimulationConfig) -> SimulationConfig:
    """canonical dict -> JSON text -> parsed dict -> revived config."""
    return config_from_dict(json.loads(json.dumps(canonical_config_dict(cfg))))


class TestRoundTripProperty:
    def test_hash_survives_wire_cycle_for_hundreds_of_configs(self):
        rng = random.Random(0xC0FFEE)
        for i in range(N_CONFIGS):
            cfg = random_config(rng)
            revived = _wire_cycle(cfg)
            assert config_hash(revived) == config_hash(cfg), (
                f"config #{i} changed hash across the wire cycle:\n"
                f"{canonical_json(canonical_config_dict(cfg))}\nvs\n"
                f"{canonical_json(canonical_config_dict(revived))}"
            )

    def test_double_cycle_is_stable(self):
        rng = random.Random(1234)
        for _ in range(50):
            cfg = random_config(rng)
            once = _wire_cycle(cfg)
            twice = _wire_cycle(once)
            assert (canonical_json(canonical_config_dict(once))
                    == canonical_json(canonical_config_dict(twice)))

    def test_generator_is_deterministic(self):
        a = [config_hash(random_config(random.Random(7))) for _ in range(3)]
        b = [config_hash(random_config(random.Random(7))) for _ in range(3)]
        assert a == b

    def test_generator_covers_the_awkward_corners(self):
        """The generator must actually hit the cases this file is about."""
        import math

        rng = random.Random(0xC0FFEE)
        configs = [random_config(rng) for _ in range(N_CONFIGS)]
        assert any(math.isinf(c.t_train) for c in configs)
        assert any(math.isnan(c.t_train) for c in configs)
        assert any(
            math.isinf(c.t_train) and c.t_train < 0 for c in configs
        )
        assert any(c.t_eval == int(c.t_eval) for c in configs
                   if not math.isinf(c.t_eval))
        assert any(c.scale.sparse for c in configs)
        assert len({c.scheme for c in configs}) == len(_SCHEMES)
        assert any(c.mix.irrational > 0 for c in configs)

    def test_every_field_is_exercised_by_the_generator(self):
        """No silently-skipped fields: across the corpus every top-level
        field takes at least two distinct values (booleans included)."""
        rng = random.Random(99)
        corpus = [random_config(rng) for _ in range(100)]
        constant = ("collect_events",)  # storable configs only, by design
        for f in dataclasses.fields(SimulationConfig):
            values = {repr(getattr(c, f.name)) for c in corpus}
            if f.name in constant:
                assert values == {"False"}
            else:
                assert len(values) >= 2, f"generator never varies {f.name}"
