"""Tests for the on-disk run store."""

import json

import pytest

from tests.conftest import assert_summaries_equal

from repro.sim.config import SimulationConfig
from repro.sim.engine import run_simulation
from repro.store.hashing import config_hash
from repro.store._runstore import STORE_SCHEMA_VERSION, RunStore, StoredRun


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=20, n_articles=5, training_steps=40, eval_steps=30, seed=seed, **kw
    )


class TestPutGet:
    def test_roundtrip(self, tmp_path):
        store = RunStore(tmp_path)
        result = run_simulation(tiny(seed=3))
        h = store.put(result)
        assert h == config_hash(tiny(seed=3))
        cached = store.get(tiny(seed=3))
        assert cached is not None
        assert_summaries_equal(cached.summary, result.summary)
        assert_summaries_equal(cached.training_summary, result.training_summary)
        assert cached.extras == result.extras
        assert cached.wall_time_s == result.wall_time_s
        assert cached.events is None
        assert cached.config == tiny(seed=3)

    def test_miss_returns_none(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.get(tiny()) is None
        assert not store.contains(tiny())
        assert tiny() not in store

    def test_contains_and_len(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(run_simulation(tiny(seed=1)))
        assert store.contains(tiny(seed=1))
        assert tiny(seed=1) in store
        assert not store.contains(tiny(seed=2))
        assert len(store) == 1

    def test_hit_miss_counters(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(run_simulation(tiny(seed=1)))
        store.get(tiny(seed=1))
        store.get(tiny(seed=2))
        assert store.stats == {"stored": 1, "hits": 1, "misses": 1}

    def test_reput_last_write_wins_after_reopen(self, tmp_path):
        store = RunStore(tmp_path)
        result = run_simulation(tiny(seed=1))
        store.put(result)
        changed = run_simulation(tiny(seed=1))
        changed.summary = dict(changed.summary)
        changed.summary["shared_files"] = 0.123456
        store.put(changed)
        assert len(store) == 1
        # A reopened store must agree with the latest put (index and
        # payload stay consistent), not serve the stale first line.
        reopened = RunStore(tmp_path)
        cached = reopened.get(tiny(seed=1))
        assert cached is not None
        assert cached.summary["shared_files"] == 0.123456
        assert reopened.records()[0].summary["shared_files"] == 0.123456


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        RunStore(tmp_path).put(run_simulation(tiny(seed=5)))
        reopened = RunStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.contains(tiny(seed=5))

    def test_index_layout(self, tmp_path):
        store = RunStore(tmp_path)
        h = store.put(run_simulation(tiny(seed=5)))
        line = json.loads((tmp_path / "index.jsonl").read_text())
        assert set(line) == {
            "config_hash",
            "schema_version",
            "summary",
            "training_summary",
            "wall_time_s",
            "extras",
        }
        assert line["config_hash"] == h
        payload = json.loads((tmp_path / "runs" / f"{h}.json").read_text())
        assert payload["config"]["seed"] == 5
        assert payload["created_at"] is not None


class TestCorruptionTolerance:
    def test_garbage_index_lines_skipped(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(run_simulation(tiny(seed=1)))
        with (tmp_path / "index.jsonl").open("a") as fh:
            fh.write("{torn json\n")
            fh.write("\n")
            fh.write('"not a dict"\n')
        reopened = RunStore(tmp_path)
        assert len(reopened) == 1

    def test_foreign_schema_version_skipped(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(run_simulation(tiny(seed=1)))
        record = json.loads((tmp_path / "index.jsonl").read_text())
        record["schema_version"] = STORE_SCHEMA_VERSION + 1
        record["config_hash"] = "f" * 64
        with (tmp_path / "index.jsonl").open("a") as fh:
            fh.write(json.dumps(record) + "\n")
        reopened = RunStore(tmp_path)
        assert len(reopened) == 1
        assert "f" * 64 not in set(reopened.iter_hashes())

    def test_orphan_payload_adopted(self, tmp_path):
        # Simulates a crash between payload write and index append.
        store = RunStore(tmp_path)
        h = store.put(run_simulation(tiny(seed=1)))
        (tmp_path / "index.jsonl").unlink()
        reopened = RunStore(tmp_path)
        assert reopened.contains(tiny(seed=1))
        # The adopted record was re-indexed for the next open.
        assert h in (tmp_path / "index.jsonl").read_text()

    def test_invalid_training_summary_skipped(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(run_simulation(tiny(seed=1)))
        record = json.loads((tmp_path / "index.jsonl").read_text())
        record["training_summary"] = None
        record["config_hash"] = "e" * 64
        with (tmp_path / "index.jsonl").open("a") as fh:
            fh.write(json.dumps(record) + "\n")
        reopened = RunStore(tmp_path)
        assert len(reopened) == 1  # corrupt record skipped, not fatal

    def test_collect_events_run_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        result = run_simulation(tiny(seed=1, collect_events=True))
        with pytest.raises(ValueError, match="collect_events"):
            store.put(result)
        assert store.get(tiny(seed=1, collect_events=True)) is None

    def test_corrupt_payload_ignored_for_records(self, tmp_path):
        store = RunStore(tmp_path)
        h = store.put(run_simulation(tiny(seed=1)))
        (tmp_path / "runs" / f"{h}.json").write_text("{nope")
        reopened = RunStore(tmp_path)
        # Index-only record still answers get(); records() falls back too.
        assert reopened.get(tiny(seed=1)) is not None
        assert len(reopened.records()) == 1


class TestQueryRecords:
    def test_query_by_field(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(run_simulation(tiny(seed=1, scheme="karma")))
        store.put(run_simulation(tiny(seed=2, scheme="karma")))
        store.put(run_simulation(tiny(seed=3, scheme="tft")))
        assert len(store.query(scheme="karma")) == 2
        assert len(store.query(scheme="karma", seed=1)) == 1
        assert store.query(scheme="reputation") == []

    def test_query_dotted_path(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(run_simulation(tiny(seed=1)))
        assert len(store.query(**{"mix.rational": 1.0})) == 1
        assert store.query(**{"mix.rational": 0.5}) == []

    def test_query_float_sentinels(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(run_simulation(tiny(seed=1)))
        assert len(store.query(t_train=float("inf"))) == 1

    def test_records_sorted_and_config_backed(self, tmp_path):
        store = RunStore(tmp_path)
        for seed in (3, 1, 2):
            store.put(run_simulation(tiny(seed=seed)))
        records = store.records()
        assert len(records) == 3
        assert [r.config["seed"] for r in records] == [3, 1, 2]  # insertion order
        assert all(isinstance(r, StoredRun) for r in records)


class TestRefresh:
    def test_sees_records_appended_by_another_handle(self, tmp_path):
        writer = RunStore(tmp_path)
        reader = RunStore(tmp_path)
        assert reader.refresh() == 0
        writer.put(run_simulation(tiny(seed=1)))
        assert not reader.contains(tiny(seed=1))  # stale until refreshed
        assert reader.refresh() >= 1
        assert reader.contains(tiny(seed=1))
        assert reader.get(tiny(seed=1)) is not None

    def test_ignores_torn_trailing_line(self, tmp_path):
        writer = RunStore(tmp_path)
        writer.put(run_simulation(tiny(seed=1)))
        reader = RunStore(tmp_path)
        # A writer crashed mid-append: no trailing newline yet.
        with (tmp_path / "index.jsonl").open("a") as fh:
            fh.write('{"config_hash": "deadbeef", "config"')
        assert reader.refresh() == 0  # torn tail deferred, not consumed
        # The write completes; the whole line is now visible.
        with (tmp_path / "index.jsonl").open("a") as fh:
            fh.write(": {}}\n")
        reader.refresh()
        assert len(reader) >= 1

    def test_missing_index_is_not_fatal(self, tmp_path):
        store = RunStore(tmp_path / "fresh")
        assert store.refresh() == 0

    def test_contains_hash(self, tmp_path):
        store = RunStore(tmp_path)
        h = store.put(run_simulation(tiny(seed=1)))
        assert store.contains_hash(h)
        assert not store.contains_hash("0" * 64)


class TestGridManifests:
    def grid(self, n=3):
        return [tiny(seed=s) for s in range(n)]

    def test_put_get_roundtrip(self, tmp_path):
        store = RunStore(tmp_path)
        grid = self.grid()
        key = store.put_grid(grid, lane_width=2)
        manifest = store.get_grid(key)
        assert manifest is not None
        assert manifest.key == key
        assert list(manifest.configs) == grid
        assert list(manifest.config_hashes) == [config_hash(c) for c in grid]
        assert manifest.lane_width == 2
        assert store.grid_keys() == [key]

    def test_key_is_content_derived(self, tmp_path):
        store = RunStore(tmp_path)
        k1 = store.put_grid(self.grid(), lane_width=2)
        k2 = store.put_grid(self.grid(), lane_width=2)
        k3 = store.put_grid(self.grid(), lane_width=4)
        assert k1 == k2
        assert k1 != k3
        assert len(store.grid_keys()) == 2

    def test_refuses_event_configs(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ValueError, match="collect_events"):
            store.put_grid([tiny(collect_events=True)], lane_width=1)

    def test_refuses_bad_lane_width(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ValueError):
            store.put_grid(self.grid(), lane_width=0)

    def test_missing_and_corrupt_manifests_read_as_none(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.get_grid("0" * 64) is None
        key = store.put_grid(self.grid(), lane_width=1)
        (store.grids_dir / f"{key}.json").write_text("{torn", encoding="utf-8")
        assert store.get_grid(key) is None

    def test_foreign_schema_reads_as_none(self, tmp_path):
        store = RunStore(tmp_path)
        key = store.put_grid(self.grid(), lane_width=1)
        path = store.grids_dir / f"{key}.json"
        doc = json.loads(path.read_text())
        doc["schema_version"] = 999
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert store.get_grid(key) is None

    def test_grid_keys_empty_store(self, tmp_path):
        assert RunStore(tmp_path).grid_keys() == []
