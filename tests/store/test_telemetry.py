"""Telemetry-artifact persistence in the RunStore."""

import json

import pytest

from repro.obs import TELEMETRY_SCHEMA_VERSION, Tracer, build_telemetry
from repro.sim.config import SimulationConfig
from repro.store.hashing import config_hash
from repro.store._runstore import RunStore


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=20, n_articles=5, training_steps=30, eval_steps=20, seed=seed, **kw
    )


def payload_for(cfg, **meta):
    tracer = Tracer(enabled=True)
    tracer.record("engine/train", 2.0)
    tracer.record("phase/act", 1.5, attrs={"lanes": 1})
    return build_telemetry(
        tracer, config_hash=config_hash(cfg), wall_time_s=2.5, meta=meta or None
    )


class TestRoundTrip:
    def test_put_get_by_config_and_by_hash(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = tiny()
        key = store.put_telemetry(payload_for(cfg))
        assert key == config_hash(cfg)
        by_cfg = store.get_telemetry(cfg)
        by_hash = store.get_telemetry(key)
        assert by_cfg == by_hash
        assert by_cfg["config_hash"] == key
        assert {s["name"] for s in by_cfg["spans"]} == {
            "engine/train", "phase/act",
        }

    def test_reopened_store_sees_artifacts(self, tmp_path):
        cfg = tiny(seed=3)
        RunStore(tmp_path).put_telemetry(payload_for(cfg))
        reopened = RunStore(tmp_path)
        assert reopened.get_telemetry(cfg) is not None
        assert reopened.telemetry_hashes() == [config_hash(cfg)]

    def test_rewrite_wins(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = tiny(seed=5)
        store.put_telemetry(payload_for(cfg, attempt=1))
        store.put_telemetry(payload_for(cfg, attempt=2))
        assert store.get_telemetry(cfg)["meta"] == {"attempt": 2}
        assert len(store.telemetry_hashes()) == 1

    def test_explicit_key_overrides_payload(self, tmp_path):
        store = RunStore(tmp_path)
        payload = payload_for(tiny())
        key = store.put_telemetry(payload, config_hash_="deadbeef")
        assert key == "deadbeef"
        assert store.get_telemetry("deadbeef") is not None


class TestValidation:
    def test_unkeyed_payload_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        payload = build_telemetry(Tracer(enabled=True))  # config_hash=None
        with pytest.raises(ValueError, match="config hash"):
            store.put_telemetry(payload)

    def test_invalid_payload_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ValueError, match="telemetry"):
            store.put_telemetry({"config_hash": "abc", "spans": []})

    def test_missing_artifact_reads_none(self, tmp_path):
        assert RunStore(tmp_path).get_telemetry(tiny()) is None

    def test_corrupt_artifact_reads_none(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = tiny(seed=7)
        key = store.put_telemetry(payload_for(cfg))
        (store.telemetry_dir / f"{key}.json").write_text("{not json", "utf-8")
        assert store.get_telemetry(cfg) is None

    def test_foreign_schema_reads_none(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = tiny(seed=8)
        key = store.put_telemetry(payload_for(cfg))
        path = store.telemetry_dir / f"{key}.json"
        doc = json.loads(path.read_text("utf-8"))
        doc["schema_version"] = TELEMETRY_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc), "utf-8")
        assert store.get_telemetry(cfg) is None


class TestIsolation:
    def test_telemetry_never_affects_cache_decisions(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = tiny(seed=9)
        store.put_telemetry(payload_for(cfg))
        assert cfg not in store
        assert store.get(cfg) is None
        assert len(store) == 0

    def test_empty_store_has_no_hashes(self, tmp_path):
        assert RunStore(tmp_path).telemetry_hashes() == []
