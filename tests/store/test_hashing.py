"""Tests for canonical config hashing."""

import json

import pytest

from repro.agents.population import PopulationMix
from repro.core.params import PaperConstants, ReputationParams
from repro.sim.config import SimulationConfig
from repro.store.hashing import (
    canonical_config_dict,
    config_from_dict,
    canonical_json,
    config_hash,
    revive_floats,
    short_hash,
)


def cfg(**kw):
    base = dict(n_agents=20, n_articles=5, training_steps=40, eval_steps=30)
    base.update(kw)
    return SimulationConfig(**base)


class TestConfigHash:
    def test_is_sha256_hex(self):
        h = config_hash(cfg())
        assert len(h) == 64
        assert int(h, 16) >= 0

    def test_equal_configs_equal_hashes(self):
        assert config_hash(cfg(seed=7)) == config_hash(cfg(seed=7))

    def test_reconstructed_config_same_hash(self):
        # A config rebuilt field-by-field (as a subprocess would) must key
        # to the same stored run.
        a = cfg(scheme="karma", capacity_sigma=0.5)
        b = SimulationConfig(
            n_agents=20,
            n_articles=5,
            training_steps=40,
            eval_steps=30,
            scheme="karma",
            capacity_sigma=0.5,
        )
        assert config_hash(a) == config_hash(b)

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 1},
            {"n_agents": 21},
            {"scheme": "tft"},
            {"t_eval": 2.0},
            {"incentives_enabled": False},
            {"mix": PopulationMix(0.5, 0.25, 0.25)},
            {"constants": PaperConstants(reputation_s=ReputationParams(beta=0.3))},
        ],
    )
    def test_any_field_change_changes_hash(self, change):
        assert config_hash(cfg()) != config_hash(cfg(**change))

    def test_int_float_equivalence(self):
        # 0 == 0.0 makes these configs dataclass-equal, so they must share
        # a cache key (a CLI-parsed int vs a builder's float).
        assert cfg(capacity_sigma=0) == cfg(capacity_sigma=0.0)
        assert config_hash(cfg(capacity_sigma=0)) == config_hash(
            cfg(capacity_sigma=0.0)
        )
        assert config_hash(cfg(t_eval=2)) == config_hash(cfg(t_eval=2.0))

    def test_infinity_fields_hash(self):
        # t_train defaults to inf; both inf and finite values must key.
        assert config_hash(cfg()) != config_hash(cfg(t_train=5.0))

    def test_short_hash_prefix(self):
        c = cfg()
        assert config_hash(c).startswith(short_hash(c))
        assert short_hash("abcdef" * 12, n=4) == "abcd"


class TestCanonicalSerialization:
    def test_dict_covers_nested_dataclasses(self):
        d = canonical_config_dict(cfg())
        assert d["mix"] == {"rational": 1.0, "altruistic": 0.0, "irrational": 0.0}
        assert d["constants"]["reputation_s"]["g"] == 19.0

    def test_strict_json(self):
        # inf is sentinel-encoded, so the payload parses as strict JSON.
        text = canonical_json(canonical_config_dict(cfg()))
        parsed = json.loads(text)
        assert parsed["t_train"] == "__inf__"

    def test_revive_floats_roundtrip(self):
        d = revive_floats(canonical_config_dict(cfg()))
        assert d["t_train"] == float("inf")
        assert d["t_eval"] == 1.0

    def test_key_order_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            canonical_json(canonical_config_dict(object()))  # type: ignore[arg-type]


class TestConfigFromDict:
    def test_roundtrip_preserves_hash(self):
        original = cfg(
            seed=7,
            scheme="karma",
            mix=PopulationMix(rational=0.5, altruistic=0.3, irrational=0.2),
        )
        revived = config_from_dict(canonical_config_dict(original))
        assert revived == original
        assert config_hash(revived) == config_hash(original)

    def test_roundtrip_with_float_sentinels(self):
        original = cfg(t_train=float("inf"))
        revived = config_from_dict(canonical_config_dict(original))
        assert revived.t_train == float("inf")
        assert config_hash(revived) == config_hash(original)

    def test_nested_dataclasses_revive_as_real_objects(self):
        revived = config_from_dict(canonical_config_dict(cfg()))
        assert isinstance(revived.mix, PopulationMix)
        assert isinstance(revived.constants, PaperConstants)
        assert isinstance(revived.constants.reputation_s, ReputationParams)

    def test_missing_keys_fall_back_to_defaults(self):
        d = canonical_config_dict(cfg(seed=9))
        d.pop("scheme")
        revived = config_from_dict(d)
        assert revived.scheme == cfg().scheme
        assert revived.seed == 9

    def test_unknown_keys_rejected(self):
        d = canonical_config_dict(cfg())
        d["not_a_field"] = 1
        with pytest.raises(ValueError, match="unknown config fields"):
            config_from_dict(d)

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            config_from_dict([1, 2, 3])  # type: ignore[arg-type]
