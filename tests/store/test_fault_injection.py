"""Fault injection against the dispatch/store substrate the service uses.

Hand-crafted corruption families the service inherits from PR 7's
filesystem coordination, each exercised against real files:

* lease files torn to garbage or truncated to zero bytes — readers must
  degrade to mtime-based staleness, reclaim must still work;
* the run-store index rewritten *shorter* than a reader's consumed byte
  offset (rotation, compaction, restore-from-backup) — ``refresh()``
  must detect the shrinkage and fall back to a full rescan instead of
  tailing from a stale offset;
* graveyard rename collisions during lease reclaim — a leftover grave
  file with the same (injected) random suffix must not break arbitration.

Plus the :class:`~repro.resilience.FaultPlan`-driven classes at the
bottom: the same corruption produced *through the named failure points*
(``lease/*``, ``store/index-append``) so the deterministic schedules a
``repro chaos`` run replays are pinned against the real IO paths.
"""

import json
import os
import time

import pytest

from repro.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    clear_plan,
    inject_faults,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationResult
from repro.store import dispatch as dispatch_mod
from repro.store.dispatch import LeaseBoard, LeaseLost
from repro.store._runstore import RunStore, StoredRun


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=8, n_articles=2, founders_per_article=2,
        training_steps=5, eval_steps=5, seed=seed, **kw,
    )


def result_of(seed=0):
    return SimulationResult(
        config=tiny(seed=seed),
        summary={"shared_files": float(seed)},
        training_summary={},
        wall_time_s=0.01,
    )


def stored(seed=0):
    return StoredRun.from_result(result_of(seed))


def age_file(path, seconds):
    """Backdate a file's mtime so staleness math sees it as old."""
    past = time.time() - seconds
    os.utime(path, (past, past))


class TestCorruptLeases:
    def test_garbage_lease_reads_as_unreadable_owner(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="a", expiry_s=5.0)
        assert board.claim("k1") is not None
        lease_path = board.claims_dir / "k1.lease"
        lease_path.write_text("{not json", encoding="utf-8")
        lease = board.read("k1")
        assert lease is not None
        assert lease.owner == "<unreadable>"
        # Fresh garbage is NOT stale: mtime is the fallback heartbeat.
        assert not lease.is_stale()

    def test_zero_byte_lease_still_blocks_then_expires(self, tmp_path):
        board_a = LeaseBoard(tmp_path, owner="a", expiry_s=1.0)
        board_b = LeaseBoard(tmp_path, owner="b", expiry_s=1.0)
        assert board_a.claim("k") is not None
        lease_path = board_a.claims_dir / "k.lease"
        lease_path.write_bytes(b"")  # torn write: zero bytes
        # Still claimed: B cannot steal a fresh (if unreadable) lease.
        assert board_b.claim("k") is None
        lease = board_b.read("k")
        assert lease.owner == "<unreadable>"
        age_file(lease_path, 30.0)
        assert board_b.read("k").is_stale()
        assert board_b.reclaim("k")
        assert board_b.claim("k") is not None  # key is free again

    def test_corrupt_lease_does_not_grant_renewal(self, tmp_path):
        import pytest

        from repro.store.dispatch import LeaseLost

        board_a = LeaseBoard(tmp_path, owner="a", expiry_s=5.0)
        lease = board_a.claim("k")
        (board_a.claims_dir / "k.lease").write_text("garbage", encoding="utf-8")
        # The file no longer names A as owner, so A must treat the lease
        # as lost rather than clobber whatever is there.
        with pytest.raises(LeaseLost):
            board_a.renew(lease)


class TestIndexShrinkage:
    def _store_pair(self, tmp_path):
        root = tmp_path / "rs"
        writer = RunStore(root)
        reader = RunStore(root)
        return root, writer, reader

    def test_truncated_index_triggers_full_rescan(self, tmp_path):
        root, writer, reader = self._store_pair(tmp_path)
        for s in range(4):
            writer.put(result_of(seed=s))
        assert reader.refresh() == 4
        offset_before = reader._index_pos

        # Rotate: rewrite the index with only one *new* record, shorter
        # than the reader's consumed offset.
        fresh = stored(seed=99)
        line = json.dumps(
            {
                "config_hash": fresh.config_hash,
                "summary": fresh.summary,
                "training_summary": fresh.training_summary,
                "wall_time_s": fresh.wall_time_s,
                "extras": {},
                "schema_version": fresh.schema_version,
            }
        )
        (root / "index.jsonl").write_text(line + "\n", encoding="utf-8")
        assert (root / "index.jsonl").stat().st_size < offset_before

        assert reader.refresh() == 1  # the rewritten record was folded in
        assert reader.contains_hash(fresh.config_hash)
        # Records loaded before the rotation survive in memory.
        assert reader.contains_hash(stored(seed=0).config_hash)
        assert len(reader) == 5

    def test_tail_refresh_still_incremental_without_shrinkage(self, tmp_path):
        root, writer, reader = self._store_pair(tmp_path)
        writer.put(result_of(seed=0))
        assert reader.refresh() == 1
        pos = reader._index_pos
        writer.put(result_of(seed=1))
        assert reader.refresh() == 1
        assert reader._index_pos > pos  # tailed forward, no rescan reset

    def test_same_size_rewrite_is_not_detected_but_harmless(self, tmp_path):
        # Shrinkage detection is byte-based by design: an equal-length
        # rewrite (same records, reordered) keeps the offset valid
        # because every line boundary is preserved.  Document that.
        root, writer, reader = self._store_pair(tmp_path)
        writer.put(result_of(seed=0))
        reader.refresh()
        text = (root / "index.jsonl").read_text(encoding="utf-8")
        (root / "index.jsonl").write_text(text, encoding="utf-8")
        assert reader.refresh() == 0
        assert len(reader) == 1

    def test_reopen_after_rotation_recovers_from_payloads(self, tmp_path):
        root, writer, _ = self._store_pair(tmp_path)
        writer.put(result_of(seed=0))
        (root / "index.jsonl").write_text("", encoding="utf-8")
        # A fresh open after the rotation: the index is empty but the
        # payload survived, so orphan recovery resurrects the run and
        # repairs the index — rotation cannot lose persisted results.
        reopened = RunStore(root)
        assert reopened.contains_hash(stored(seed=0).config_hash)
        assert len(reopened) == 1


class TestGraveyardCollisions:
    def test_leftover_grave_with_same_suffix_is_replaced(
        self, tmp_path, monkeypatch
    ):
        board = LeaseBoard(tmp_path, owner="a", expiry_s=0.1)
        board.claim("k")
        age_file(board.claims_dir / "k.lease", 10.0)
        monkeypatch.setattr(
            dispatch_mod.secrets, "token_hex", lambda n=4: "deadbeef"
        )
        # A crashed reaper left a grave under the exact name the next
        # reclaim will generate.
        grave = board.claims_dir / ".reap-k-deadbeef"
        grave.write_text("old corpse", encoding="utf-8")
        assert board.reclaim("k")  # os.rename replaces the leftover
        assert not grave.exists()
        assert not (board.claims_dir / "k.lease").exists()

    def test_racing_reclaims_have_one_winner(self, tmp_path, monkeypatch):
        board_a = LeaseBoard(tmp_path, owner="a", expiry_s=0.1)
        board_b = LeaseBoard(tmp_path, owner="b", expiry_s=0.1)
        board_a.claim("k")
        age_file(board_a.claims_dir / "k.lease", 10.0)
        monkeypatch.setattr(
            dispatch_mod.secrets, "token_hex", lambda n=4: "deadbeef"
        )
        # Same grave name for both: the rename is still the arbiter.
        assert board_a.reclaim("k") is True
        assert board_b.reclaim("k") is False  # corpse already gone
        assert board_b.claim("k") is not None

    def test_reclaim_cleans_up_its_grave(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="a", expiry_s=0.1)
        board.claim("k")
        age_file(board.claims_dir / "k.lease", 10.0)
        assert board.reclaim("k")
        leftovers = list(board.claims_dir.glob(".reap-*"))
        assert leftovers == []


class TestPlanDrivenLeases:
    """The lease protocol under deterministic fault schedules."""

    def test_single_injected_claim_fault_is_ridden_out(self, tmp_path):
        # lease/claim fires per attempt *inside* the retry wrapper: one
        # injected OSError is invisible to the caller.
        board = LeaseBoard(tmp_path, owner="a", expiry_s=5.0)
        plan = FaultPlan([FaultSpec(site="lease/claim", action="error", at=(1,))])
        with inject_faults(plan):
            lease = board.claim("k")
        assert lease is not None
        assert len(plan.fired) == 1
        assert board.read("k").owner == "a"

    def test_persistent_claim_fault_exhausts_retry(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="a", expiry_s=5.0)
        with inject_faults(FaultPlan([FaultSpec(site="lease/claim")])):
            with pytest.raises(InjectedFault):
                board.claim("k")
        # No half-claimed lease left behind.
        assert board.read("k") is None

    def test_injected_lease_loss_reclamation_cycle(self, tmp_path):
        # The full reclamation story, driven by the plan: A loses its
        # lease mid-compute (as if a survivor reclaimed it), stops
        # renewing, B reclaims the expired file and claims the key.
        board_a = LeaseBoard(tmp_path, owner="a", expiry_s=0.05)
        board_b = LeaseBoard(tmp_path, owner="b", expiry_s=0.05)
        lease = board_a.claim("k", config_hashes=("h1",))
        plan = FaultPlan(
            [FaultSpec(site="lease/renew", action="lease-loss", at=(1,))]
        )
        with inject_faults(plan):
            with pytest.raises(LeaseLost):
                board_a.renew(lease)
        time.sleep(0.1)  # A stopped renewing: the heartbeat goes stale
        assert board_b.read("k").is_stale()
        assert board_b.reclaim("k")
        reclaimed = board_b.claim("k", config_hashes=("h1",))
        assert reclaimed is not None and reclaimed.owner == "b"

    def test_site_pattern_covers_all_lease_points(self, tmp_path):
        # One 'lease/*' spec observes claim, renew and release alike —
        # chaos plans can target the protocol, not one call site.
        board = LeaseBoard(tmp_path, owner="a", expiry_s=5.0)
        plan = FaultPlan([FaultSpec(site="lease/*", action="delay", at=())])
        with inject_faults(plan):
            lease = board.claim("k")
            lease = board.renew(lease)
            board.release(lease)
        # at=() never fires, but every site registered a hit.
        assert plan._hits[0] >= 3

    def test_replayed_plan_fires_identically(self, tmp_path):
        def run_once(root):
            board = LeaseBoard(root, owner="a", expiry_s=5.0)
            plan = FaultPlan(
                [FaultSpec(site="lease/claim", action="error", at=(2,))]
            )
            with inject_faults(plan):
                board.claim("k1")
                try:
                    board.claim("k2")
                except InjectedFault:
                    pass
            return [(f["site"], f["hit"], f["action"]) for f in plan.fired]

        first = run_once(tmp_path / "one")
        second = run_once(tmp_path / "two")
        assert first == second


class TestPlanDrivenIndexAppends:
    """`store/index-append` torn writes against the append-only index."""

    def test_single_torn_append_healed_by_put_retry(self, tmp_path):
        # One torn append: partial line bytes land, the append raises,
        # the store's own retry re-runs the idempotent put sequence and
        # the healing path terminates the torn tail first.
        store = RunStore(tmp_path / "rs")
        plan = FaultPlan(
            [FaultSpec(site="store/index-append", action="torn-write", at=(1,))]
        )
        with inject_faults(plan):
            h = store.put(result_of(seed=0))
        assert len(plan.fired) == 1
        reopened = RunStore(tmp_path / "rs")
        assert reopened.contains_hash(h)
        assert len(reopened) == 1  # the torn fragment cost nothing

    def test_torn_tail_does_not_poison_later_appends(self, tmp_path):
        # A writer dies mid-append (every attempt torn) — the next
        # healthy put must not fuse its line with the corpse's fragment.
        store = RunStore(tmp_path / "rs")
        with inject_faults(
            FaultPlan([FaultSpec(site="store/index-append", action="torn-write")])
        ):
            with pytest.raises(InjectedFault):
                store.put(result_of(seed=0))
        h1 = stored(seed=0).config_hash
        h2 = store.put(result_of(seed=1))
        reopened = RunStore(tmp_path / "rs")
        assert reopened.contains_hash(h2)
        # The torn record's payload landed before its index line died, so
        # orphan recovery resurrects it — rotation/tearing loses nothing.
        assert reopened.contains_hash(h1)

    def test_reader_refresh_skips_torn_tail_until_completed(self, tmp_path):
        root = tmp_path / "rs"
        writer = RunStore(root)
        reader = RunStore(root)
        writer.put(result_of(seed=0))
        assert reader.refresh() == 1
        with inject_faults(
            FaultPlan([FaultSpec(site="store/index-append", action="torn-write")])
        ):
            with pytest.raises(InjectedFault):
                writer.put(result_of(seed=1))
        # The tail is mid-line: an incremental refresh must not consume
        # (or crash on) the fragment.
        assert reader.refresh() == 0
        assert len(reader) == 1
        writer.put(result_of(seed=2))  # heals the tail, appends cleanly
        assert reader.refresh() >= 1
        assert reader.contains_hash(stored(seed=2).config_hash)

    def test_persistent_store_put_fault_exhausts_retry(self, tmp_path):
        store = RunStore(tmp_path / "rs")
        plan = FaultPlan([FaultSpec(site="store/put", action="error")])
        with inject_faults(plan):
            with pytest.raises(InjectedFault):
                store.put(result_of(seed=0))
        # Fired exactly the retry budget: deterministic, replayable.
        assert len(plan.fired) == store.retry.max_attempts
