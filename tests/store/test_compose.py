"""Tests for the scenario algebra: modifiers, composition, hash stability."""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim._sweep import run_sweep
from repro.store import (
    RunStore,
    ScenarioModifier,
    compose_scenarios,
    composed_pack,
    config_hash,
    expand_scenario,
    get_modifier,
    iter_modifiers,
    modifier_names,
    register_modifier,
    resolve_scenario,
)

#: Shrinks any composition to a smoke-test horizon.
TINY = dict(n_agents=16, n_articles=4, training_steps=20, eval_steps=15)


class TestModifierRegistry:
    def test_builtin_modifiers_registered(self):
        names = modifier_names()
        for name in (
            "churn/storm",
            "overlay/sparse",
            "capacity/heterogeneous",
            "adversary/collusion",
            "adversary/sybil",
            "schemes/all",
        ):
            assert name in names

    def test_tag_filter(self):
        assert "adversary/sybil" in modifier_names(tag="adversary")
        assert "churn/storm" not in modifier_names(tag="adversary")

    def test_unknown_modifier(self):
        with pytest.raises(KeyError, match="unknown modifier"):
            get_modifier("no/such/modifier")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_modifier("churn/storm", "dup", [{"leave_rate": 0.1}])

    def test_empty_variants_rejected(self):
        with pytest.raises(ValueError, match="at least one variant"):
            ScenarioModifier("x", "empty", variants=())
        with pytest.raises(ValueError, match="empty variant"):
            ScenarioModifier("x", "empty", variants=({},))

    def test_axes_derived_from_variants(self):
        assert get_modifier("churn/storm").axes == ("join_rate", "leave_rate")
        assert get_modifier("schemes/all").axes == ("scheme",)

    def test_iter_sorted(self):
        mods = iter_modifiers()
        assert [m.name for m in mods] == sorted(m.name for m in mods)
        assert all(m.description for m in mods)


class TestComposition:
    def test_cross_product_size(self):
        configs = compose_scenarios(
            "base/default", "churn/storm", "capacity/heterogeneous", n_seeds=2
        )
        # 2 seeds x 3 churn rates x 2 sigmas.
        assert len(configs) == 12
        assert len(set(configs)) == 12

    def test_modifier_fields_applied(self):
        configs = compose_scenarios(
            "base/default", "adversary/collusion", "adversary/sybil", n_seeds=1
        )
        (cfg,) = configs
        assert cfg.collusion_fraction == 0.25
        assert cfg.sybil_fraction == 0.2
        assert cfg.sybil_rate == 0.05

    def test_overrides_applied_last(self):
        configs = compose_scenarios(
            "base/default",
            "churn/spike",
            n_seeds=1,
            overrides={"leave_rate": 0.123, **TINY},
        )
        (cfg,) = configs
        assert cfg.leave_rate == 0.123  # overrides beat the modifier
        assert cfg.join_rate == 0.05  # untouched modifier field survives
        assert cfg.n_agents == 16

    def test_rightmost_modifier_wins(self):
        storm_then_spike = compose_scenarios(
            "base/default", "churn/spike", "churn/whitewash", n_seeds=1
        )
        assert all(c.leave_rate == 0.05 for c in storm_then_spike)
        assert {c.whitewash_rate for c in storm_then_spike} == {0.01, 0.05}

    def test_params_forward_to_base_builder(self):
        configs = compose_scenarios(
            "paper/fig4", "churn/spike", n_seeds=1, percentages=[10]
        )
        # 2 varied types x 1 percentage x 1 seed x 1 variant.
        assert len(configs) == 2
        assert all(c.leave_rate == 0.05 for c in configs)

    def test_objects_accepted(self):
        mod = ScenarioModifier("adhoc", "inline axis", ({"n_states": 5},))
        configs = compose_scenarios("base/default", mod, n_seeds=1)
        assert configs[0].n_states == 5


class TestHashStability:
    """The acceptance criterion: composed == hand-built, key for key."""

    def test_composed_hashes_equal_hand_built(self):
        composed = compose_scenarios(
            "paper/fig3", "churn/storm", n_seeds=2, overrides=TINY
        )
        base = expand_scenario("paper/fig3", n_seeds=2, overrides=TINY)
        hand = [
            c.with_(leave_rate=r, join_rate=r)
            for r in (0.002, 0.01, 0.05)
            for c in base
        ]
        assert [config_hash(c) for c in composed] == [config_hash(c) for c in hand]

    def test_independent_modifiers_commute_as_sets(self):
        a = compose_scenarios("base/default", "churn/storm", "overlay/sparse", n_seeds=1)
        b = compose_scenarios("base/default", "overlay/sparse", "churn/storm", n_seeds=1)
        assert {config_hash(c) for c in a} == {config_hash(c) for c in b}

    def test_store_dedupes_across_spellings(self, tmp_path):
        composed = compose_scenarios(
            "base/default", "churn/spike", n_seeds=2, overrides=TINY
        )
        store = RunStore(tmp_path / "rs")
        run_sweep(composed, backend="serial", store=store)
        assert store.misses == len(composed)

        hand = [
            c.with_(leave_rate=0.05, join_rate=0.05)
            for c in expand_scenario("base/default", n_seeds=2, overrides=TINY)
        ]
        reopened = RunStore(tmp_path / "rs")
        results = run_sweep(hand, backend="serial", store=reopened)
        assert reopened.misses == 0 and reopened.hits == len(hand)
        assert all(r is not None for r in results)


class TestResolveScenario:
    def test_plain_pack_passthrough(self):
        assert resolve_scenario("paper/fig3").name == "paper/fig3"

    def test_composed_spec(self):
        pack = resolve_scenario("paper/fig3+churn/spike")
        assert pack.name == "paper/fig3+churn/spike"
        assert "composed" in pack.tags
        configs = pack.expand(fast=True, n_seeds=1, overrides=TINY)
        assert len(configs) == 2  # fig3's on/off pair x 1 variant
        assert all(c.leave_rate == 0.05 for c in configs)
        assert all(c.n_agents == 16 for c in configs)

    def test_unknown_base(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            resolve_scenario("nope+churn/spike")

    def test_unknown_modifier(self):
        with pytest.raises(KeyError, match="unknown modifier"):
            resolve_scenario("paper/fig3+nope")

    @pytest.mark.parametrize("spec", ["+churn/spike", "paper/fig3+", "+"])
    def test_malformed_spec(self, spec):
        with pytest.raises(ValueError, match="composed spec"):
            composed_pack(spec)


class TestRegisteredCompositions:
    def test_kitchen_sink_sets_every_axis(self):
        (cfg,) = expand_scenario("stress/kitchen-sink", n_seeds=1)
        assert cfg.leave_rate > 0 and cfg.join_rate > 0
        assert cfg.overlay_kind == "random"
        assert cfg.capacity_sigma == 1.0
        assert cfg.collusion_fraction > 0
        assert cfg.sybil_fraction > 0 and cfg.sybil_rate > 0

    def test_sybil_storm_grid(self):
        configs = expand_scenario("adversary/sybil-storm", n_seeds=2)
        assert len(configs) == 6  # 3 churn rates x 2 seeds
        assert all(c.sybil_fraction == 0.2 for c in configs)

    def test_schemes_adversarial_covers_all_schemes(self):
        configs = expand_scenario("schemes/adversarial", n_seeds=1)
        assert {c.scheme for c in configs} == {"none", "tft", "karma", "reputation"}
        assert all(c.collusion_fraction == 0.25 for c in configs)

    def test_composed_pack_runs(self):
        configs = expand_scenario(
            "stress/kitchen-sink", fast=True, n_seeds=1, overrides=TINY
        )
        from repro.sim.engine import run_simulation

        result = run_simulation(configs[0])
        assert 0.0 <= result.summary["shared_files"] <= 1.0
