"""Tests for the scenario registry (paper packs + new grids)."""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import run_simulation
from repro.store.registry import (
    ScenarioPack,
    expand_scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

#: Shrinks any pack's configs to a smoke-test horizon.
TINY = dict(n_agents=20, n_articles=5, training_steps=30, eval_steps=20)

NEW_PACKS = (
    "churn/storm",
    "churn/whitewash",
    "overlay/sparse",
    "capacity/heterogeneous",
    "schemes/shootout",
)

ADVERSARY_PACKS = (
    "adversary/collusion",
    "adversary/collusion-rings",
    "adversary/sybil",
    "adversary/shootout",
)

COMPOSED_PACKS = (
    "adversary/sybil-storm",
    "stress/kitchen-sink",
    "stress/churn-overlay",
    "stress/capacity-churn",
    "schemes/adversarial",
)


class TestRegistryBasics:
    def test_paper_packs_registered(self):
        names = scenario_names()
        for name in ("paper/fig3", "paper/fig4", "paper/fig6", "paper/fig7"):
            assert name in names

    def test_new_packs_registered(self):
        names = scenario_names()
        for name in NEW_PACKS:
            assert name in names
        non_paper = [n for n in names if not n.startswith("paper/")]
        assert len(non_paper) >= 3

    def test_tag_filter(self):
        churn = scenario_names(tag="churn")
        assert "churn/storm" in churn
        assert "paper/fig3" not in churn

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no/such/pack")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("churn/storm", "dup")(lambda fast, n_seeds: [])

    def test_iter_scenarios_sorted_packs(self):
        packs = iter_scenarios()
        assert all(isinstance(p, ScenarioPack) for p in packs)
        assert [p.name for p in packs] == sorted(p.name for p in packs)
        assert all(p.description for p in packs)


class TestExpansion:
    @pytest.mark.parametrize("name", NEW_PACKS + ("paper/fig3", "paper/fig6"))
    def test_expands_to_valid_configs(self, name):
        configs = expand_scenario(name, fast=True, n_seeds=2, overrides=TINY)
        assert len(configs) >= 2
        assert all(isinstance(c, SimulationConfig) for c in configs)
        # Overrides applied to every config; grid points are distinct.
        assert all(c.n_agents == 20 for c in configs)
        assert len(set(configs)) == len(configs)

    def test_n_seeds_scales_grid(self):
        one = expand_scenario("capacity/heterogeneous", n_seeds=1)
        two = expand_scenario("capacity/heterogeneous", n_seeds=2)
        assert len(two) == 2 * len(one)

    def test_seeds_deterministic(self):
        a = expand_scenario("churn/storm", n_seeds=3)
        b = expand_scenario("churn/storm", n_seeds=3)
        assert a == b

    def test_builder_params_forwarded(self):
        configs = expand_scenario(
            "schemes/shootout", n_seeds=1, schemes=("karma",), overrides=TINY
        )
        assert {c.scheme for c in configs} == {"karma"}

    def test_invalid_n_seeds(self):
        with pytest.raises(ValueError):
            expand_scenario("churn/storm", n_seeds=0)

    def test_adversary_builder_params_forwarded(self):
        configs = expand_scenario(
            "adversary/collusion",
            n_seeds=1,
            fractions=(0.5,),
            ring_size=6,
            overrides=TINY,
        )
        assert len(configs) == 1
        assert configs[0].collusion_fraction == 0.5
        assert configs[0].collusion_ring_size == 6

    def test_expand_tolerates_unknown_kwarg(self):
        # Builders swallow unknown params via **_, so stray kwargs are
        # tolerated rather than crashing an interactive exploration.
        configs = expand_scenario("adversary/sybil", n_seeds=1, bogus=1)
        assert configs


class TestAdversaryAndComposedPacks:
    def test_registered(self):
        names = scenario_names()
        for name in ADVERSARY_PACKS + COMPOSED_PACKS + ("base/default",):
            assert name in names
        assert len(names) >= 18

    def test_adversary_tag_filter(self):
        tagged = scenario_names(tag="adversary")
        for name in ADVERSARY_PACKS:
            assert name in tagged
        assert "paper/fig3" not in tagged

    def test_composed_packs_carry_composed_tag(self):
        for name in COMPOSED_PACKS:
            assert "composed" in get_scenario(name).tags

    @pytest.mark.parametrize("name", ADVERSARY_PACKS)
    def test_adversary_pack_last_config_runs(self, name):
        configs = expand_scenario(name, fast=True, n_seeds=1, overrides=TINY)
        # The last grid point carries the adversary pressure (the first
        # is often the zero-pressure baseline, e.g. collusion_fraction=0).
        result = run_simulation(configs[-1])
        assert 0.0 <= result.summary["shared_files"] <= 1.0


class TestSmokeRuns:
    """Each new pack's first grid point must actually simulate."""

    @pytest.mark.parametrize("name", NEW_PACKS)
    def test_new_pack_first_config_runs(self, name):
        configs = expand_scenario(name, fast=True, n_seeds=1, overrides=TINY)
        # Pick a non-default grid point (the last one) to exercise the
        # dimension the pack varies, not just the base config.
        result = run_simulation(configs[-1])
        assert 0.0 <= result.summary["shared_files"] <= 1.0
