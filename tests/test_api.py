"""The stable public facade (``repro.api``) and the deprecation shims.

Two contracts: every name in ``repro.api.__all__`` works as documented,
and the pre-facade import paths (``repro.sim.sweep``,
``repro.store.runstore``) keep functioning — same module objects, so
monkeypatching through the old path still patches the real
implementation — while warning ``DeprecationWarning`` exactly once per
interpreter.
"""

import importlib
import subprocess
import sys

import pytest

import repro.api as api
from repro.sim.config import SimulationConfig

TINY = dict(
    n_agents=10,
    n_articles=2,
    founders_per_article=2,
    training_steps=5,
    eval_steps=5,
)


class TestFacade:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_api_is_exported_from_the_package_root(self):
        import repro

        assert repro.api is api
        assert "api" in repro.__all__

    def test_run(self):
        result = api.run(api.SimulationConfig(**TINY))
        assert 0.0 <= result.summary["shared_bandwidth"] <= 1.0

    def test_run_backend_override(self):
        result = api.run(SimulationConfig(**TINY), backend="numpy")
        assert result.config.engine.backend == "numpy"

    def test_sweep_serial_with_store(self, tmp_path):
        store = api.open_store(tmp_path / "rs")
        cfg = SimulationConfig(**TINY)
        results = api.sweep([cfg, cfg.with_(seed=1)], store=store, executor="serial")
        assert len(results) == 2
        assert len(store.records()) == 2
        # Cached on repeat: same configs, no recomputation needed.
        again = api.sweep([cfg, cfg.with_(seed=1)], store=store, executor="serial")
        assert [r.summary for r in again] == [r.summary for r in results]

    def test_sweep_kernel_backend_is_hash_neutral(self, tmp_path, monkeypatch):
        from repro.sim.backends import reset_backend_cache

        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        reset_backend_cache()
        try:
            store = api.open_store(tmp_path / "rs")
            cfg = SimulationConfig(**TINY)
            api.sweep([cfg], store=store, executor="serial", backend="compiled")
            # The default-backend spelling of the same config hits the
            # cache: engine.backend is excluded from the store hash.
            assert store.get(cfg) is not None
        finally:
            reset_backend_cache()

    def test_compose(self):
        configs = api.compose("base/default", fast=True, n_seeds=1)
        assert configs and all(
            isinstance(c, api.SimulationConfig) for c in configs
        )

    def test_list_backends(self):
        names = {b["name"] for b in api.list_backends()}
        assert {"numpy", "compiled"} <= names

    def test_config_classes_are_the_real_ones(self):
        from repro.sim.config import EngineConfig, ScaleConfig

        assert api.EngineConfig is EngineConfig
        assert api.ScaleConfig is ScaleConfig


class TestDeprecationShims:
    def test_old_sweep_path_is_the_real_module(self):
        import repro.sim._sweep as real

        with pytest.warns(DeprecationWarning, match="repro.sim.sweep"):
            for mod in ("repro.sim.sweep",):
                sys.modules.pop(mod, None)
                old = importlib.import_module(mod)
        assert old is real
        from repro.sim.sweep import run_sweep

        assert run_sweep is real.run_sweep

    def test_old_runstore_path_is_the_real_module(self):
        import repro.store._runstore as real

        with pytest.warns(DeprecationWarning, match="repro.store.runstore"):
            sys.modules.pop("repro.store.runstore", None)
            old = importlib.import_module("repro.store.runstore")
        assert old is real
        from repro.store.runstore import RunStore

        assert RunStore is real.RunStore is api.RunStore

    def test_monkeypatching_old_path_patches_the_implementation(
        self, monkeypatch
    ):
        """The aliasing guarantee the test suite itself relies on."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sys.modules.pop("repro.sim.sweep", None)
            old = importlib.import_module("repro.sim.sweep")
        import repro.sim._sweep as real

        sentinel = object()
        monkeypatch.setattr(old, "run_sweep", sentinel)
        assert real.run_sweep is sentinel

    def test_fresh_interpreter_warns_on_old_import(self):
        """End to end in a clean process: old import warns, works anyway."""
        code = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as w:\n"
            "    warnings.simplefilter('always')\n"
            "    from repro.sim.sweep import run_sweep\n"
            "    from repro.store.runstore import RunStore\n"
            "msgs = [str(x.message) for x in w\n"
            "        if issubclass(x.category, DeprecationWarning)]\n"
            "assert any('repro.sim.sweep' in m for m in msgs), msgs\n"
            "assert any('repro.store.runstore' in m for m in msgs), msgs\n"
            "assert callable(run_sweep) and callable(RunStore)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
