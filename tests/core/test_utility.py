"""Tests for the paper's utility functions (section III-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import UtilityParams
from repro.core.utility import editing_utility, sharing_utility


class TestSharingUtility:
    def test_formula(self):
        p = UtilityParams(alpha=2.0, beta=0.5, gamma=0.25)
        u = sharing_utility(
            received_bandwidth=np.array([0.8]),
            shared_articles=np.array([1.0]),
            offered_bandwidth=np.array([0.5]),
            params=p,
        )
        assert u[0] == pytest.approx(2.0 * 0.8 - 0.5 * 1.0 - 0.25 * 0.5)

    def test_pure_free_rider_non_negative(self):
        """Sharing nothing has no cost; downloading is pure benefit."""
        p = UtilityParams()
        u = sharing_utility(np.array([0.5]), np.array([0.0]), np.array([0.0]), p)
        assert u[0] > 0

    def test_pure_altruist_without_downloads_negative(self):
        p = UtilityParams()
        u = sharing_utility(np.array([0.0]), np.array([1.0]), np.array([1.0]), p)
        assert u[0] < 0

    def test_vectorized(self):
        p = UtilityParams()
        u = sharing_utility(np.zeros(5), np.ones(5), np.ones(5), p)
        assert u.shape == (5,)
        assert np.all(u == u[0])

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_monotone_in_benefit(self, received, arts, bw):
        p = UtilityParams()
        lo = sharing_utility(np.array([received]), np.array([arts]), np.array([bw]), p)
        hi = sharing_utility(
            np.array([received + 0.1]), np.array([arts]), np.array([bw]), p
        )
        assert hi[0] > lo[0]

    @given(st.floats(min_value=0, max_value=0.9))
    @settings(max_examples=50, deadline=None)
    def test_property_monotone_decreasing_in_cost(self, arts):
        p = UtilityParams()
        lo = sharing_utility(np.array([0.5]), np.array([arts]), np.array([0.0]), p)
        hi = sharing_utility(np.array([0.5]), np.array([arts + 0.1]), np.array([0.0]), p)
        assert hi[0] < lo[0]


class TestEditingUtility:
    def test_formula(self):
        p = UtilityParams(delta=3.0, epsilon=2.0)
        u = editing_utility(np.array([2.0]), np.array([4.0]), p)
        assert u[0] == pytest.approx(3.0 * 2.0 + 2.0 * 4.0)

    def test_non_negative(self):
        """The paper assigns editing/voting no rational cost."""
        p = UtilityParams()
        u = editing_utility(np.zeros(3), np.zeros(3), p)
        assert np.all(u == 0.0)

    def test_accepted_edit_worth_more_than_vote(self):
        p = UtilityParams()
        edit = editing_utility(np.array([1.0]), np.array([0.0]), p)
        vote = editing_utility(np.array([0.0]), np.array([1.0]), p)
        assert edit[0] > vote[0]
