"""Tests for the TFT and karma baseline schemes (paper section II-B)."""

import numpy as np
import pytest

from repro.core.baselines import KarmaScheme, PrivateHistoryScheme


class TestPrivateHistoryScheme:
    def test_strangers_split_equally(self):
        s = PrivateHistoryScheme(4)
        shares = s.bandwidth_shares(np.array([0, 0]), np.array([1, 2]))
        assert shares == pytest.approx([0.5, 0.5])

    def test_reciprocity_rewarded(self):
        """A downloader that served this source before gets more."""
        s = PrivateHistoryScheme(4)
        # Peer 1 served peer 0 with 2.0 units earlier.
        s.record_transfers(
            downloader_ids=np.array([0]),
            source_ids=np.array([1]),
            amounts=np.array([2.0]),
        )
        # Now 1 and 2 compete for peer 0's bandwidth.
        shares = s.bandwidth_shares(np.array([0, 0]), np.array([1, 2]))
        assert shares[0] > shares[1]

    def test_history_is_private_per_pair(self):
        """Serving peer 0 earns nothing at peer 3 — no shared history."""
        s = PrivateHistoryScheme(4)
        s.record_transfers(np.array([0]), np.array([1]), np.array([5.0]))
        shares = s.bandwidth_shares(np.array([3, 3]), np.array([1, 2]))
        assert shares[0] == pytest.approx(shares[1])

    def test_history_decays(self):
        s = PrivateHistoryScheme(2, history_decay=0.5)
        s.record_transfers(np.array([0]), np.array([1]), np.array([4.0]))
        before = s.given[1, 0]
        s.record_transfers(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0)
        )
        assert s.given[1, 0] == pytest.approx(before * 0.5)

    def test_everyone_may_edit_and_vote(self):
        s = PrivateHistoryScheme(3)
        assert s.may_edit().all()
        assert s.may_vote().all()
        assert s.accept_majority(0) == 0.5

    def test_reset(self):
        s = PrivateHistoryScheme(2)
        s.record_transfers(np.array([0]), np.array([1]), np.array([1.0]))
        s.reset_reputations()
        assert np.all(s.given == 0.0)

    def test_reputation_s_normalized(self):
        s = PrivateHistoryScheme(3)
        assert np.all(s.reputation_s() == 0.0)
        s.record_transfers(np.array([0]), np.array([1]), np.array([2.0]))
        rep = s.reputation_s()
        assert rep.max() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivateHistoryScheme(2, history_decay=0.0)
        with pytest.raises(ValueError):
            PrivateHistoryScheme(2, optimistic_floor=0.0)


class TestKarmaScheme:
    def test_serving_earns_downloading_costs(self):
        s = KarmaScheme(3, initial_karma=1.0)
        s.record_transfers(
            downloader_ids=np.array([0]),
            source_ids=np.array([1]),
            amounts=np.array([0.5]),
        )
        assert s.balance[1] == pytest.approx(1.5)
        assert s.balance[0] == pytest.approx(0.5)
        assert s.balance[2] == pytest.approx(1.0)

    def test_balance_floored_at_zero(self):
        s = KarmaScheme(2, initial_karma=0.0)
        s.record_transfers(np.array([0]), np.array([1]), np.array([3.0]))
        assert s.balance[0] == 0.0

    def test_rich_peer_gets_more_bandwidth(self):
        s = KarmaScheme(3)
        s.record_transfers(np.array([2]), np.array([0]), np.array([4.0]))
        # Peer 0 earned 4 karma; peers 0 and 1 compete at source 2.
        shares = s.bandwidth_shares(np.array([2, 2]), np.array([0, 1]))
        assert shares[0] > shares[1]

    def test_karma_is_conserved_above_floor(self):
        s = KarmaScheme(4, initial_karma=2.0)
        rng = np.random.default_rng(0)
        total_before = s.balance.sum()
        for _ in range(20):
            d, src = rng.choice(4, size=2, replace=False)
            s.record_transfers(
                np.array([d]), np.array([src]), np.array([0.1])
            )
        # No balance hit zero, so karma is exactly conserved.
        assert s.balance.sum() == pytest.approx(total_before)

    def test_reset(self):
        s = KarmaScheme(2, initial_karma=1.0)
        s.record_transfers(np.array([0]), np.array([1]), np.array([0.4]))
        s.reset_reputations()
        assert np.all(s.balance == 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KarmaScheme(2, initial_karma=-1.0)
        with pytest.raises(ValueError):
            KarmaScheme(2, floor=0.0)


class TestBaselinesInEngine:
    @pytest.mark.parametrize("scheme", ["tft", "karma"])
    def test_engine_runs(self, scheme):
        from repro.sim.config import SimulationConfig
        from repro.sim.engine import run_simulation

        cfg = SimulationConfig(
            n_agents=24,
            n_articles=6,
            training_steps=80,
            eval_steps=50,
            scheme=scheme,
            seed=3,
        )
        res = run_simulation(cfg)
        assert 0.0 <= res.summary["shared_files"] <= 1.0

    def test_scheme_name_validation(self):
        from repro.sim.config import SimulationConfig

        with pytest.raises(ValueError):
            SimulationConfig(scheme="barter")

    def test_auto_resolution(self):
        from repro.sim.config import SimulationConfig

        assert SimulationConfig().resolved_scheme == "reputation"
        assert (
            SimulationConfig(incentives_enabled=False).resolved_scheme == "none"
        )
        assert SimulationConfig(scheme="tft").resolved_scheme == "tft"

    def test_tft_fails_to_raise_sharing_on_nondirect_workload(self):
        """The paper's core claim, measured: on the collaboration workload
        TFT sustains no more sharing than no incentives at all, while the
        reputation scheme sustains more."""
        from repro.sim.config import SimulationConfig
        from repro.sim._sweep import run_sweep

        def mk(scheme, seed):
            return SimulationConfig(
                n_agents=60,
                n_articles=12,
                training_steps=700,
                eval_steps=400,
                scheme=scheme,
                seed=seed,
            )

        seeds = (11, 22)
        configs = [mk(s, sd) for s in ("none", "tft", "reputation") for sd in seeds]
        results = run_sweep(configs, backend="process")
        bw = {
            s: np.mean(
                [
                    r.summary["shared_bandwidth"]
                    for r in results[i * 2 : (i + 1) * 2]
                ]
            )
            for i, s in enumerate(("none", "tft", "reputation"))
        }
        assert bw["reputation"] > bw["none"]
        # TFT's private history cannot separate peers here: it stays within
        # noise of the baseline and clearly below the reputation scheme.
        assert bw["tft"] < bw["reputation"]
