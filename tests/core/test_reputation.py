"""Unit + property tests for the reputation functions (paper Figure 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ReputationParams
from repro.core.reputation import (
    REPUTATION_FUNCTIONS,
    ConstantReputation,
    LinearReputation,
    LogisticReputation,
    PowerReputation,
    StepReputation,
    reputation_to_state,
)

ALL_FUNCTION_FACTORIES = [
    lambda: LogisticReputation(),
    lambda: LinearReputation(),
    lambda: PowerReputation(),
    lambda: StepReputation(),
    lambda: ConstantReputation(),
]


class TestLogisticReputation:
    def test_paper_r_min_at_zero(self):
        """g = 19 pins R(0) = 1/20 = 0.05 exactly (paper section III-A)."""
        fn = LogisticReputation(ReputationParams(g=19.0, beta=0.2, r_min=0.05))
        assert fn(0.0) == pytest.approx(0.05)

    def test_approaches_r_max(self):
        fn = LogisticReputation()
        assert fn(1e6) == pytest.approx(1.0)

    def test_monotone_on_grid(self):
        fn = LogisticReputation()
        c = np.linspace(0, 100, 400)
        r = fn(c)
        assert np.all(np.diff(r) >= 0)

    def test_paper_figure1_midpoint(self):
        """At the inflection point C = ln(g)/beta the value is exactly 1/2."""
        for beta in (0.1, 0.15, 0.2, 0.3):
            fn = LogisticReputation(ReputationParams(beta=beta))
            assert fn(fn.inflection_point()) == pytest.approx(0.5)

    def test_beta_orders_curves(self):
        """Steeper beta reaches higher reputation at the same contribution."""
        c = 10.0
        values = [
            float(LogisticReputation(ReputationParams(beta=b))(c))
            for b in (0.1, 0.15, 0.2, 0.3)
        ]
        assert values == sorted(values)

    def test_inverse_roundtrip(self):
        fn = LogisticReputation()
        c = np.array([1.0, 5.0, 14.7, 40.0])
        assert fn.inverse(fn(c)) == pytest.approx(c, rel=1e-9)

    def test_inverse_rejects_boundaries(self):
        fn = LogisticReputation()
        with pytest.raises(ValueError):
            fn.inverse(1.0)
        with pytest.raises(ValueError):
            fn.inverse(0.0)

    def test_rejects_negative_contribution(self):
        fn = LogisticReputation()
        with pytest.raises(ValueError):
            fn(np.array([-0.1]))

    def test_vectorized_matches_scalar(self):
        fn = LogisticReputation()
        c = np.array([0.0, 3.0, 10.0, 30.0])
        vec = fn(c)
        for i, ci in enumerate(c):
            assert vec[i] == pytest.approx(float(fn(float(ci))))

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_property_range(self, c):
        fn = LogisticReputation()
        r = float(fn(c))
        assert 0.05 <= r <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e4),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_monotone(self, a, b):
        fn = LogisticReputation()
        lo, hi = min(a, b), max(a, b)
        assert float(fn(lo)) <= float(fn(hi)) + 1e-12


class TestAlternativeFunctions:
    @pytest.mark.parametrize("factory", ALL_FUNCTION_FACTORIES)
    def test_range_invariant(self, factory):
        fn = factory()
        c = np.linspace(0, 200, 300)
        r = fn(c)
        assert np.all(r >= fn.r_min - 1e-12)
        assert np.all(r <= fn.r_max + 1e-12)

    @pytest.mark.parametrize("factory", ALL_FUNCTION_FACTORIES)
    def test_monotone_invariant(self, factory):
        fn = factory()
        c = np.linspace(0, 200, 300)
        r = fn(c)
        assert np.all(np.diff(r) >= -1e-12)

    def test_linear_hits_r_max_at_c_full(self):
        fn = LinearReputation(c_full=30.0)
        assert float(fn(30.0)) == pytest.approx(1.0)
        assert float(fn(100.0)) == pytest.approx(1.0)  # clipped

    def test_linear_starts_at_r_min(self):
        fn = LinearReputation()
        assert float(fn(0.0)) == pytest.approx(0.05)

    def test_power_concave_below_linear_midpoint(self):
        """exponent < 1 means faster early growth than the linear ramp."""
        lin = LinearReputation(c_full=30.0)
        pow_ = PowerReputation(c_full=30.0, exponent=0.5)
        assert float(pow_(10.0)) > float(lin(10.0))

    def test_step_produces_discrete_levels(self):
        fn = StepReputation(c_full=30.0, n_steps=4)
        c = np.linspace(0, 30, 200)
        levels = np.unique(np.round(fn(c), 12))
        assert levels.size <= 5

    def test_constant_ignores_contribution(self):
        fn = ConstantReputation(value=0.7)
        assert np.all(fn(np.array([0.0, 10.0, 1e5])) == 0.7)

    def test_constant_rejects_bad_value(self):
        with pytest.raises(ValueError):
            ConstantReputation(value=0.0)
        with pytest.raises(ValueError):
            ConstantReputation(value=1.5)

    def test_registry_complete(self):
        assert set(REPUTATION_FUNCTIONS) == {
            "logistic",
            "linear",
            "power",
            "step",
            "constant",
        }

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinearReputation(c_full=0.0)
        with pytest.raises(ValueError):
            PowerReputation(exponent=-1.0)
        with pytest.raises(ValueError):
            StepReputation(n_steps=0)


class TestReputationToState:
    def test_paper_ten_states(self):
        """r in [0.05, 1] falls into 10 equal-width states (paper IV-B)."""
        r = np.array([0.05, 0.14, 0.15, 0.52, 0.99, 1.0])
        s = reputation_to_state(r, n_states=10, r_min=0.05)
        assert s.tolist() == [0, 0, 1, 4, 9, 9]

    def test_full_range_covers_all_states(self):
        r = np.linspace(0.05, 1.0, 1000)
        s = reputation_to_state(r)
        assert set(s.tolist()) == set(range(10))

    def test_clipped_to_valid_states(self):
        s = reputation_to_state(np.array([0.0, 2.0]), n_states=10, r_min=0.05)
        assert s.min() >= 0 and s.max() <= 9

    def test_single_state(self):
        s = reputation_to_state(np.array([0.3, 0.9]), n_states=1)
        assert np.all(s == 0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            reputation_to_state(np.array([0.5]), n_states=0)
        with pytest.raises(ValueError):
            reputation_to_state(np.array([0.5]), r_min=1.0, r_max=0.5)

    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_state_in_range(self, r, n_states):
        s = int(reputation_to_state(np.array([r]), n_states=n_states)[0])
        assert 0 <= s < n_states

    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_monotone_states(self, a, b):
        lo, hi = min(a, b), max(a, b)
        s = reputation_to_state(np.array([lo, hi]))
        assert s[0] <= s[1]
