"""Tests for service differentiation (bandwidth, voting, editing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ReputationParams, ServiceParams
from repro.core.service import (
    allocate_by_reputation,
    allocate_equal_split,
    edit_eligibility,
    required_majority,
    voting_weights,
)


class TestAllocateByReputation:
    def test_paper_formula_single_source(self):
        """B_i = R_i / sum_k R_k over downloaders of the same source."""
        sources = np.array([0, 0, 0])
        reps = np.array([0.2, 0.3, 0.5])
        shares = allocate_by_reputation(sources, reps, n_sources=1)
        assert shares == pytest.approx([0.2, 0.3, 0.5])

    def test_shares_sum_to_one_per_source(self):
        rng = np.random.default_rng(0)
        sources = rng.integers(0, 5, size=40)
        reps = rng.uniform(0.05, 1.0, size=40)
        shares = allocate_by_reputation(sources, reps, n_sources=5)
        for s in range(5):
            mask = sources == s
            if mask.any():
                assert shares[mask].sum() == pytest.approx(1.0)

    def test_higher_reputation_more_bandwidth(self):
        sources = np.array([0, 0])
        shares = allocate_by_reputation(sources, np.array([0.05, 0.95]), 1)
        assert shares[1] > shares[0]
        assert shares[1] / shares[0] == pytest.approx(19.0)

    def test_sole_downloader_gets_everything(self):
        shares = allocate_by_reputation(np.array([3]), np.array([0.05]), 5)
        assert shares[0] == pytest.approx(1.0)

    def test_zero_reputation_group_falls_back_to_equal(self):
        shares = allocate_by_reputation(np.array([0, 0]), np.array([0.0, 0.0]), 1)
        assert shares == pytest.approx([0.5, 0.5])

    def test_empty_requests(self):
        shares = allocate_by_reputation(np.empty(0, np.int64), np.empty(0), 4)
        assert shares.size == 0

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            allocate_by_reputation(np.array([0]), np.array([-0.1]), 1)

    def test_rejects_out_of_range_groups(self):
        with pytest.raises(ValueError):
            allocate_by_reputation(np.array([5]), np.array([0.5]), 2)

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_property_shares_partition_unity(self, n_req, n_src):
        rng = np.random.default_rng(n_req * 100 + n_src)
        sources = rng.integers(0, n_src, size=n_req)
        reps = rng.uniform(0.05, 1.0, size=n_req)
        shares = allocate_by_reputation(sources, reps, n_src)
        totals = np.zeros(n_src)
        np.add.at(totals, sources, shares)
        occupied = np.bincount(sources, minlength=n_src) > 0
        assert totals[occupied] == pytest.approx(np.ones(occupied.sum()))
        assert np.all(shares >= 0)


class TestAllocateEqualSplit:
    def test_equal_shares(self):
        shares = allocate_equal_split(np.array([0, 0, 0, 1]), 2)
        assert shares == pytest.approx([1 / 3, 1 / 3, 1 / 3, 1.0])

    def test_ignores_reputation_by_construction(self):
        s1 = allocate_equal_split(np.array([0, 0]), 1)
        assert s1 == pytest.approx([0.5, 0.5])


class TestVotingWeights:
    def test_paper_formula(self):
        """v_i = R_iE / sum_k R_kE."""
        w = voting_weights(np.array([0.1, 0.3, 0.6]))
        assert w == pytest.approx([0.1, 0.3, 0.6])

    def test_sums_to_one(self):
        rng = np.random.default_rng(1)
        w = voting_weights(rng.uniform(0.05, 1, 17))
        assert w.sum() == pytest.approx(1.0)

    def test_empty_voters(self):
        assert voting_weights(np.empty(0)).size == 0

    def test_all_zero_reputation_uniform(self):
        w = voting_weights(np.zeros(4))
        assert w == pytest.approx([0.25] * 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            voting_weights(np.array([0.5, -0.1]))


class TestRequiredMajority:
    def setup_method(self):
        self.service = ServiceParams(majority_min=0.5, majority_max=0.75)
        self.rep = ReputationParams()

    def test_inverse_proportionality(self):
        """Higher editor reputation -> smaller required majority."""
        lo = required_majority(0.05, self.service, self.rep)
        hi = required_majority(1.0, self.service, self.rep)
        assert float(lo) == pytest.approx(0.75)
        assert float(hi) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        r = np.linspace(0.05, 1.0, 50)
        m = required_majority(r, self.service, self.rep)
        assert np.all(np.diff(m) <= 1e-12)

    def test_clipped_outside_band(self):
        assert float(required_majority(0.0, self.service, self.rep)) == pytest.approx(0.75)
        assert float(required_majority(2.0, self.service, self.rep)) == pytest.approx(0.5)

    @given(st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_property_in_band(self, r):
        m = float(required_majority(r, self.service, self.rep))
        assert 0.5 <= m <= 0.75


class TestEditEligibility:
    def test_threshold(self):
        service = ServiceParams(edit_threshold=0.10)
        mask = edit_eligibility(np.array([0.05, 0.10, 0.5]), service)
        assert mask.tolist() == [False, True, True]
