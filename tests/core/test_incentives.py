"""Tests for the incentive-scheme facade and the no-incentive baseline."""

import numpy as np
import pytest

from repro.core.incentives import (
    NoIncentiveScheme,
    ReputationIncentiveScheme,
    make_scheme,
)
from repro.core.params import PaperConstants, ServiceParams


@pytest.fixture
def scheme() -> ReputationIncentiveScheme:
    return ReputationIncentiveScheme(n_peers=6)


class TestReputationIncentiveScheme:
    def test_newcomers_at_r_min(self, scheme):
        assert scheme.reputation_s() == pytest.approx([0.05] * 6)
        assert scheme.reputation_e() == pytest.approx([0.05] * 6)

    def test_sharing_raises_reputation(self, scheme):
        arts = np.zeros(6)
        arts[2] = 1.0
        for _ in range(30):
            scheme.record_sharing(arts, np.zeros(6))
        rep = scheme.reputation_s()
        assert rep[2] > rep[0]

    def test_bandwidth_shares_favour_reputation(self, scheme):
        arts = np.zeros(6)
        arts[1] = 1.0
        for _ in range(50):
            scheme.record_sharing(arts, arts)
        shares = scheme.bandwidth_shares(
            source_ids=np.array([0, 0]), downloader_ids=np.array([1, 2])
        )
        assert shares[0] > shares[1]

    def test_may_edit_requires_theta(self, scheme):
        assert not scheme.may_edit().any()
        arts = np.ones(6)
        for _ in range(30):
            scheme.record_sharing(arts, arts)
        assert scheme.may_edit().all()

    def test_accept_majority_decreases_with_reputation(self, scheme):
        votes = np.zeros(6)
        votes[0] = 3.0
        for _ in range(50):
            scheme.record_editing(votes, votes)
        assert scheme.accept_majority(0) < scheme.accept_majority(1)

    def test_vote_ban_flow(self, scheme):
        threshold = scheme.constants.service.vote_punish_threshold
        for _ in range(threshold):
            scheme.record_vote_outcomes(np.array([3]), np.array([False]))
        assert not scheme.may_vote()[3]
        # An accepted edit restores voting rights.
        scheme.record_edit_outcomes(np.array([3]), np.array([True]))
        assert scheme.may_vote()[3]

    def test_edit_punishment_resets_reputations(self, scheme):
        arts = np.ones(6)
        for _ in range(30):
            scheme.record_sharing(arts, arts)
            scheme.record_editing(arts, arts)
        threshold = scheme.constants.service.edit_punish_threshold
        punished = np.empty(0)
        for _ in range(threshold):
            punished = scheme.record_edit_outcomes(np.array([4]), np.array([False]))
        assert punished.tolist() == [4]
        assert scheme.reputation_s()[4] == pytest.approx(0.05)
        assert scheme.reputation_e()[4] == pytest.approx(0.05)
        # Unpunished peers keep their reputation.
        assert scheme.reputation_s()[0] > 0.5

    def test_reset_reputations_clears_everything(self, scheme):
        arts = np.ones(6)
        for _ in range(20):
            scheme.record_sharing(arts, arts)
        scheme.record_vote_outcomes(
            np.array([0] * scheme.constants.service.vote_punish_threshold),
            np.zeros(scheme.constants.service.vote_punish_threshold, dtype=bool),
        )
        scheme.reset_reputations()
        assert scheme.reputation_s() == pytest.approx([0.05] * 6)
        assert scheme.may_vote().all()

    def test_vote_weights_normalized(self, scheme):
        w = scheme.vote_weights(np.array([0, 1, 2]))
        assert w.sum() == pytest.approx(1.0)


class TestNoIncentiveScheme:
    def test_flat_reputation(self):
        s = NoIncentiveScheme(4)
        assert np.all(s.reputation_s() == 1.0)

    def test_equal_split(self):
        s = NoIncentiveScheme(4)
        shares = s.bandwidth_shares(np.array([0, 0]), np.array([1, 2]))
        assert shares == pytest.approx([0.5, 0.5])

    def test_everyone_may_edit_and_vote(self):
        s = NoIncentiveScheme(4)
        assert s.may_edit().all()
        assert s.may_vote().all()

    def test_simple_majority(self):
        s = NoIncentiveScheme(4)
        assert s.accept_majority(0) == 0.5

    def test_unweighted_votes(self):
        s = NoIncentiveScheme(4)
        w = s.vote_weights(np.array([0, 1]))
        assert w == pytest.approx([0.5, 0.5])

    def test_punishments_are_noops(self):
        s = NoIncentiveScheme(4)
        assert s.record_vote_outcomes(np.array([0]), np.array([False])).size == 0
        assert s.record_edit_outcomes(np.array([0]), np.array([False])).size == 0
        assert s.may_vote().all()

    def test_contributions_still_tracked(self):
        s = NoIncentiveScheme(2)
        s.record_sharing(np.ones(2), np.ones(2))
        assert np.all(s.ledger.sharing > 0)


class TestMakeScheme:
    def test_factory(self):
        assert isinstance(make_scheme(3, True), ReputationIncentiveScheme)
        assert isinstance(make_scheme(3, False), NoIncentiveScheme)

    def test_differentiation_flags(self):
        assert make_scheme(3, True).differentiates_service
        assert not make_scheme(3, False).differentiates_service

    def test_custom_constants(self):
        constants = PaperConstants(service=ServiceParams(edit_threshold=0.3))
        s = make_scheme(3, True, constants)
        assert s.constants.service.edit_threshold == 0.3
