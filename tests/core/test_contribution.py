"""Tests for the contribution ledger (C_S / C_E accounting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contribution import ContributionLedger
from repro.core.params import ContributionParams


def ledger(n=4, **kwargs) -> ContributionLedger:
    return ContributionLedger(n, ContributionParams(**kwargs))


class TestRecordSharing:
    def test_weighted_sum(self):
        led = ledger(2, alpha_s=2.0, beta_s=3.0, d_s=0.0, retention=1.0)
        led.record_sharing(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        assert led.sharing.tolist() == [2.0, 3.0]

    def test_decay_applies(self):
        led = ledger(1, d_s=0.5, retention=1.0)
        led.record_sharing(np.array([1.0]), np.array([0.0]))
        expected = 2.0 * 1.0 - 0.5  # alpha_s default 2.0
        assert led.sharing[0] == pytest.approx(expected)

    def test_floored_at_zero(self):
        led = ledger(1, d_s=5.0, retention=1.0)
        led.record_sharing(np.array([0.0]), np.array([0.0]))
        assert led.sharing[0] == 0.0

    def test_inactive_peer_decays_to_zero(self):
        led = ledger(1, d_s=0.3, retention=1.0)
        led.record_sharing(np.array([1.0]), np.array([1.0]))
        start = float(led.sharing[0])
        for _ in range(100):
            led.record_sharing(np.array([0.0]), np.array([0.0]))
        assert led.sharing[0] == 0.0
        assert start > 0.0

    def test_ema_steady_state(self):
        """C converges to (inflow - d) / (1 - retention)."""
        p = ContributionParams(alpha_s=2.0, beta_s=2.0, d_s=0.02, retention=0.9)
        led = ContributionLedger(1, p)
        ones = np.array([1.0])
        for _ in range(500):
            led.record_sharing(ones, ones)
        expected = (2.0 + 2.0 - 0.02) / 0.1
        assert led.sharing[0] == pytest.approx(expected, rel=1e-6)

    def test_rejects_negative(self):
        led = ledger()
        with pytest.raises(ValueError):
            led.record_sharing(np.array([-1.0, 0, 0, 0]), np.zeros(4))

    def test_rejects_bad_shape(self):
        led = ledger()
        with pytest.raises(ValueError):
            led.record_sharing(np.zeros(3), np.zeros(3))

    @given(
        st.lists(st.floats(min_value=0, max_value=1), min_size=3, max_size=3),
        st.lists(st.floats(min_value=0, max_value=1), min_size=3, max_size=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_non_negative(self, arts, bws):
        led = ledger(3)
        for _ in range(5):
            led.record_sharing(np.array(arts), np.array(bws))
        assert np.all(led.sharing >= 0)

    @given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    @settings(max_examples=50, deadline=None)
    def test_property_more_sharing_more_contribution(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        led = ledger(2)
        for _ in range(50):
            led.record_sharing(np.array([lo, hi]), np.array([lo, hi]))
        assert led.sharing[0] <= led.sharing[1] + 1e-9


class TestRecordEditing:
    def test_weighted_sum(self):
        led = ledger(2, alpha_e=1.0, beta_e=5.0, d_e=0.0, retention=1.0)
        led.record_editing(np.array([2.0, 0.0]), np.array([0.0, 1.0]))
        assert led.editing.tolist() == [2.0, 5.0]

    def test_independent_of_sharing(self):
        led = ledger(1)
        led.record_editing(np.array([3.0]), np.array([1.0]))
        assert led.sharing[0] == 0.0
        assert led.editing[0] > 0.0


class TestResets:
    def test_reset_peers_sharing_and_editing(self):
        led = ledger(3)
        led.record_sharing(np.ones(3), np.ones(3))
        led.record_editing(np.ones(3), np.ones(3))
        led.reset_peers(np.array([1]))
        assert led.sharing[1] == 0.0 and led.editing[1] == 0.0
        assert led.sharing[0] > 0.0 and led.editing[2] > 0.0

    def test_reset_peers_selective(self):
        led = ledger(2)
        led.record_sharing(np.ones(2), np.ones(2))
        led.record_editing(np.ones(2), np.ones(2))
        led.reset_peers(np.array([0]), sharing=True, editing=False)
        assert led.sharing[0] == 0.0
        assert led.editing[0] > 0.0

    def test_reset_all(self):
        led = ledger(3)
        led.record_sharing(np.ones(3), np.ones(3))
        led.reset_all()
        assert np.all(led.sharing == 0.0)
        assert np.all(led.editing == 0.0)

    def test_bad_n_peers(self):
        with pytest.raises(ValueError):
            ContributionLedger(0)
