"""Tests for malicious-voter/editor punishment (paper III-C2/3)."""

import numpy as np
import pytest

from repro.core.punishment import EditPunishment, VotePunishment


class TestVotePunishment:
    def test_ban_after_threshold(self):
        vp = VotePunishment(n_peers=3, threshold=3)
        for _ in range(2):
            newly = vp.record_votes(np.array([0]), np.array([False]))
            assert newly.size == 0
        newly = vp.record_votes(np.array([0]), np.array([False]))
        assert newly.tolist() == [0]
        assert not vp.can_vote()[0]
        assert vp.can_vote()[1]

    def test_successful_vote_resets_streak(self):
        vp = VotePunishment(n_peers=1, threshold=3)
        vp.record_votes(np.array([0, 0]), np.array([False, False]))
        vp.record_votes(np.array([0]), np.array([True]))
        assert vp.unsuccessful_votes[0] == 0
        # Needs the full threshold again.
        newly = vp.record_votes(np.array([0, 0]), np.array([False, False]))
        assert newly.size == 0

    def test_ban_reported_once(self):
        vp = VotePunishment(n_peers=1, threshold=1)
        first = vp.record_votes(np.array([0]), np.array([False]))
        second = vp.record_votes(np.array([0]), np.array([False]))
        assert first.tolist() == [0]
        assert second.size == 0

    def test_restore(self):
        vp = VotePunishment(n_peers=2, threshold=1)
        vp.record_votes(np.array([0, 1]), np.array([False, False]))
        vp.restore(np.array([0]))
        assert vp.can_vote().tolist() == [True, False]
        assert vp.unsuccessful_votes[0] == 0

    def test_reset(self):
        vp = VotePunishment(n_peers=2, threshold=1)
        vp.record_votes(np.array([0]), np.array([False]))
        vp.reset()
        assert vp.can_vote().all()
        assert np.all(vp.unsuccessful_votes == 0)

    def test_batch_repeated_voter(self):
        """One step may contain several votes by the same peer."""
        vp = VotePunishment(n_peers=1, threshold=3)
        newly = vp.record_votes(
            np.array([0, 0, 0]), np.array([False, False, False])
        )
        assert newly.tolist() == [0]

    def test_empty_batch(self):
        vp = VotePunishment(n_peers=2, threshold=1)
        assert vp.record_votes(np.empty(0, np.int64), np.empty(0, bool)).size == 0

    def test_misaligned_rejected(self):
        vp = VotePunishment(n_peers=2, threshold=1)
        with pytest.raises(ValueError):
            vp.record_votes(np.array([0]), np.array([True, False]))

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            VotePunishment(2, 0)


class TestEditPunishment:
    def test_punish_after_threshold(self):
        ep = EditPunishment(n_peers=2, threshold=2)
        assert ep.record_edits(np.array([0]), np.array([False])).size == 0
        punished = ep.record_edits(np.array([0]), np.array([False]))
        assert punished.tolist() == [0]

    def test_counter_restarts_after_punishment(self):
        ep = EditPunishment(n_peers=1, threshold=2)
        ep.record_edits(np.array([0, 0]), np.array([False, False]))
        assert ep.declined_edits[0] == 0
        assert ep.record_edits(np.array([0]), np.array([False])).size == 0

    def test_accepted_edit_clears_streak(self):
        ep = EditPunishment(n_peers=1, threshold=2)
        ep.record_edits(np.array([0]), np.array([False]))
        ep.record_edits(np.array([0]), np.array([True]))
        assert ep.declined_edits[0] == 0

    def test_reset(self):
        ep = EditPunishment(n_peers=1, threshold=5)
        ep.record_edits(np.array([0]), np.array([False]))
        ep.reset()
        assert ep.declined_edits[0] == 0

    def test_empty_batch(self):
        ep = EditPunishment(n_peers=1, threshold=1)
        assert ep.record_edits(np.empty(0, np.int64), np.empty(0, bool)).size == 0

    def test_misaligned_rejected(self):
        ep = EditPunishment(n_peers=1, threshold=1)
        with pytest.raises(ValueError):
            ep.record_edits(np.array([0, 0]), np.array([False]))
