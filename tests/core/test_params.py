"""Tests for the model constants and their validation."""

import pytest

from repro.core.params import (
    DEFAULT_CONSTANTS,
    ContributionParams,
    PaperConstants,
    ReputationParams,
    ServiceParams,
    UtilityParams,
)


class TestReputationParams:
    def test_paper_defaults(self):
        p = ReputationParams()
        assert p.g == 19.0
        assert p.r_min == 0.05
        assert p.r_max == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"g": 0.0},
            {"g": -1.0},
            {"beta": 0.0},
            {"r_min": 0.0},
            {"r_min": 1.0},
            {"r_min": 0.5, "r_max": 0.4},
            {"r_max": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReputationParams(**kwargs)


class TestContributionParams:
    def test_defaults_positive(self):
        p = ContributionParams()
        assert p.alpha_s > 0 and p.beta_s > 0 and p.alpha_e > 0 and p.beta_e > 0

    def test_memory_window(self):
        assert ContributionParams(retention=0.9).memory_window == pytest.approx(10.0)
        assert ContributionParams(retention=1.0).memory_window == float("inf")

    def test_steady_state_sharing(self):
        p = ContributionParams(alpha_s=2.0, beta_s=2.0, d_s=0.0, retention=0.9)
        assert p.steady_state_sharing(1.0, 1.0) == pytest.approx(40.0)
        assert p.steady_state_sharing(0.0, 0.0) == 0.0

    def test_steady_state_literal_mode_diverges(self):
        p = ContributionParams(retention=1.0)
        assert p.steady_state_sharing(1.0, 1.0) == float("inf")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha_s": 0.0},
            {"beta_e": -1.0},
            {"d_s": -0.1},
            {"retention": 0.0},
            {"retention": 1.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ContributionParams(**kwargs)


class TestServiceParams:
    def test_majority_band_valid(self):
        p = ServiceParams()
        assert 0.0 < p.majority_min <= p.majority_max <= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"majority_min": 0.8, "majority_max": 0.6},
            {"majority_min": 0.0},
            {"majority_max": 1.2},
            {"vote_punish_threshold": 0},
            {"edit_punish_threshold": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServiceParams(**kwargs)


class TestPaperConstants:
    def test_theta_above_r_min(self):
        """The paper requires theta > R_min_S."""
        c = PaperConstants()
        assert c.service.edit_threshold > c.reputation_s.r_min

    def test_rejects_theta_at_or_below_r_min(self):
        with pytest.raises(ValueError):
            PaperConstants(
                reputation_s=ReputationParams(r_min=0.2),
                service=ServiceParams(edit_threshold=0.2),
            )

    def test_with_overrides(self):
        c = DEFAULT_CONSTANTS.with_overrides(utility=UtilityParams(alpha=9.0))
        assert c.utility.alpha == 9.0
        assert DEFAULT_CONSTANTS.utility.alpha != 9.0  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONSTANTS.utility = UtilityParams()  # type: ignore[misc]

    def test_default_editing_reputation_steeper(self):
        """Editing events are rarer, so R_E uses a steeper logistic."""
        c = PaperConstants()
        assert c.reputation_e.beta > c.reputation_s.beta
