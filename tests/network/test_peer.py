"""Tests for the peer population arrays."""

import numpy as np
import pytest

from repro.network.peer import (
    ALTRUISTIC,
    IRRATIONAL,
    RATIONAL,
    TYPE_NAMES,
    PeerArrays,
)


def make_peers(n=6):
    types = np.array([RATIONAL, RATIONAL, ALTRUISTIC, ALTRUISTIC, IRRATIONAL, IRRATIONAL][:n])
    return PeerArrays.create(types)


class TestCreate:
    def test_defaults(self):
        peers = make_peers()
        assert peers.n == 6
        assert peers.online.all()
        assert np.all(peers.upload_capacity == 1.0)
        assert np.all(peers.offered_bandwidth == 0.0)

    def test_counts(self):
        peers = make_peers()
        assert peers.counts() == {"rational": 2, "altruistic": 2, "irrational": 2}

    def test_mask(self):
        peers = make_peers()
        assert peers.mask(RATIONAL).sum() == 2
        assert peers.mask(ALTRUISTIC).tolist()[2:4] == [True, True]

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            PeerArrays.create(np.array([0, 7]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PeerArrays.create(np.array([], dtype=np.int8))

    def test_type_names_complete(self):
        assert set(TYPE_NAMES.values()) == {"rational", "altruistic", "irrational"}


class TestActions:
    def test_set_actions(self):
        peers = make_peers()
        bw = np.full(6, 0.5)
        files = np.full(6, 1.0)
        peers.set_actions(bw, files)
        assert np.all(peers.offered_bandwidth == 0.5)
        assert np.all(peers.offered_files == 1.0)

    def test_sharing_mask_requires_files_and_online(self):
        peers = make_peers()
        files = np.array([1.0, 0.0, 0.5, 0.0, 1.0, 0.0])
        peers.set_actions(np.ones(6), files)
        peers.online[0] = False
        mask = peers.sharing_mask()
        assert mask.tolist() == [False, False, True, False, True, False]

    def test_rejects_out_of_range(self):
        peers = make_peers()
        with pytest.raises(ValueError):
            peers.set_actions(np.full(6, 1.5), np.zeros(6))
        with pytest.raises(ValueError):
            peers.set_actions(np.zeros(6), np.full(6, -0.1))

    def test_rejects_bad_shape(self):
        peers = make_peers()
        with pytest.raises(ValueError):
            peers.set_actions(np.zeros(3), np.zeros(3))
