"""Tests for download sampling and bandwidth settlement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.bandwidth import (
    DownloadRequests,
    sample_download_requests,
    settle_downloads,
)


class TestSampleDownloadRequests:
    def test_no_sharers_no_requests(self, rng):
        req = sample_download_requests(rng, np.zeros(10, dtype=bool))
        assert req.n == 0

    def test_sources_are_sharers(self, rng):
        sharing = np.zeros(20, dtype=bool)
        sharing[[3, 7, 11]] = True
        req = sample_download_requests(rng, sharing, download_probability=1.0)
        assert np.isin(req.source_ids, [3, 7, 11]).all()

    def test_never_self_download(self, rng_factory):
        sharing = np.ones(10, dtype=bool)
        for seed in range(20):
            req = sample_download_requests(
                rng_factory(seed), sharing, download_probability=1.0
            )
            assert np.all(req.downloader_ids != req.source_ids)

    def test_single_sharer_cannot_serve_itself(self, rng):
        sharing = np.zeros(3, dtype=bool)
        sharing[1] = True
        req = sample_download_requests(rng, sharing, download_probability=1.0)
        assert 1 not in req.downloader_ids.tolist()
        assert np.all(req.source_ids == 1)

    def test_probability_zero(self, rng):
        req = sample_download_requests(
            rng, np.ones(10, dtype=bool), download_probability=0.0
        )
        assert req.n == 0

    def test_paper_default_probability(self, rng_factory):
        """P = 1/N_S: with N_S sharers each peer requests ~1/N_S per step."""
        sharing = np.ones(50, dtype=bool)
        total = 0
        n_trials = 300
        for seed in range(n_trials):
            req = sample_download_requests(rng_factory(seed), sharing, None)
            total += req.n
        mean_requests = total / n_trials
        assert mean_requests == pytest.approx(1.0, abs=0.35)

    def test_full_probability_everyone_downloads(self, rng):
        sharing = np.ones(30, dtype=bool)
        req = sample_download_requests(rng, sharing, download_probability=1.0)
        assert req.n == 30

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_property_requests_valid(self, n, seed):
        rng = np.random.default_rng(seed)
        sharing = rng.random(n) < 0.5
        req = sample_download_requests(rng, sharing, download_probability=0.7)
        assert np.all(req.downloader_ids != req.source_ids)
        assert np.all(sharing[req.source_ids])


class TestSettleDownloads:
    def test_conservation(self):
        """Total received equals total served."""
        req = DownloadRequests(
            downloader_ids=np.array([1, 2, 3]), source_ids=np.array([0, 0, 4])
        )
        shares = np.array([0.6, 0.4, 1.0])
        offered = np.array([0.5, 0.0, 0.0, 0.0, 1.0])
        capacity = np.ones(5)
        received, served = settle_downloads(req, shares, offered, capacity, 5)
        assert received.sum() == pytest.approx(served.sum())

    def test_amounts(self):
        req = DownloadRequests(
            downloader_ids=np.array([1, 2]), source_ids=np.array([0, 0])
        )
        shares = np.array([0.75, 0.25])
        offered = np.array([0.8, 0.0, 0.0])
        received, served = settle_downloads(req, shares, offered, np.ones(3), 3)
        assert received[1] == pytest.approx(0.6)
        assert received[2] == pytest.approx(0.2)
        assert served[0] == pytest.approx(0.8)

    def test_source_offering_nothing_transfers_nothing(self):
        req = DownloadRequests(
            downloader_ids=np.array([1]), source_ids=np.array([0])
        )
        received, served = settle_downloads(
            req, np.array([1.0]), np.zeros(2), np.ones(2), 2
        )
        assert received.sum() == 0.0
        assert served.sum() == 0.0

    def test_empty_requests(self):
        req = DownloadRequests(
            downloader_ids=np.empty(0, np.int64), source_ids=np.empty(0, np.int64)
        )
        received, served = settle_downloads(req, np.empty(0), np.ones(3), np.ones(3), 3)
        assert received.sum() == 0.0 and served.sum() == 0.0

    def test_misaligned_shares_rejected(self):
        req = DownloadRequests(
            downloader_ids=np.array([1]), source_ids=np.array([0])
        )
        with pytest.raises(ValueError):
            settle_downloads(req, np.array([0.5, 0.5]), np.ones(2), np.ones(2), 2)

    def test_requests_validation(self):
        with pytest.raises(ValueError):
            DownloadRequests(
                downloader_ids=np.array([1, 2]), source_ids=np.array([0])
            )

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_property_conservation_random(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        sharing = rng.random(n) < 0.7
        if not sharing.any():
            return
        req = sample_download_requests(rng, sharing, download_probability=1.0)
        if req.n == 0:
            return
        # Reputation-style shares summing to 1 per source.
        from repro.core.service import allocate_by_reputation

        reps = rng.uniform(0.05, 1.0, size=req.n)
        shares = allocate_by_reputation(req.source_ids, reps, n)
        offered = rng.random(n)
        received, served = settle_downloads(req, shares, offered, np.ones(n), n)
        assert received.sum() == pytest.approx(served.sum())
        assert np.all(received >= 0) and np.all(served >= 0)
        # A source never serves more than it offers.
        assert np.all(served <= offered + 1e-9)
