"""Tests for overlay-constrained download sampling (engine extension)."""

import numpy as np
import pytest

from repro.network.bandwidth import sample_download_requests_overlay
from repro.network.overlay import OverlayNetwork


@pytest.fixture
def small_world(rng):
    return OverlayNetwork(20, kind="smallworld", rng=rng, degree=4)


class TestOverlaySampling:
    def test_sources_are_neighbours(self, small_world, rng):
        sharing = np.ones(20, dtype=bool)
        req = sample_download_requests_overlay(
            rng, sharing, small_world, download_probability=1.0
        )
        for d, s in zip(req.downloader_ids, req.source_ids):
            assert s in small_world.neighbors(int(d)).tolist()
            assert s != d

    def test_sources_share(self, small_world, rng):
        sharing = np.zeros(20, dtype=bool)
        sharing[::3] = True
        req = sample_download_requests_overlay(
            rng, sharing, small_world, download_probability=1.0
        )
        assert np.all(sharing[req.source_ids])

    def test_starved_peers_skip(self, rng):
        overlay = OverlayNetwork(6, kind="random", rng=rng, degree=2)
        # Only peer 0 shares; any peer not adjacent to 0 is starved.
        sharing = np.zeros(6, dtype=bool)
        sharing[0] = True
        req = sample_download_requests_overlay(
            rng, sharing, overlay, download_probability=1.0
        )
        neighbours_of_0 = set(overlay.neighbors(0).tolist())
        assert set(req.downloader_ids.tolist()) <= neighbours_of_0

    def test_no_sharers(self, small_world, rng):
        req = sample_download_requests_overlay(
            rng, np.zeros(20, dtype=bool), small_world, 1.0
        )
        assert req.n == 0

    def test_full_overlay_equivalent_support(self, rng):
        """On a clique the overlay sampler reaches every sharer."""
        overlay = OverlayNetwork(10, kind="full")
        sharing = np.ones(10, dtype=bool)
        seen = set()
        for _ in range(50):
            req = sample_download_requests_overlay(rng, sharing, overlay, 1.0)
            seen.update(req.source_ids.tolist())
        assert seen == set(range(10))


class TestEngineWithOverlay:
    def test_overlay_run_completes(self):
        from repro.sim.config import SimulationConfig
        from repro.sim.engine import run_simulation

        cfg = SimulationConfig(
            n_agents=24,
            n_articles=6,
            training_steps=60,
            eval_steps=40,
            overlay_kind="smallworld",
            overlay_degree=4,
            seed=2,
        )
        res = run_simulation(cfg)
        assert 0.0 <= res.summary["shared_files"] <= 1.0

    def test_sparse_overlay_starves_requests(self):
        """When sharers are rare and the overlay sparse, peers without a
        sharing neighbour cannot download at all, so less bandwidth moves
        than on the paper's fully connected graph.  (With a thinned
        request process the throughput is request-limited, which is what
        makes the starvation visible in the mean.)"""
        from repro.agents.population import PopulationMix
        from repro.sim.config import SimulationConfig
        from repro.sim.engine import run_simulation

        base = dict(
            n_agents=40,
            n_articles=8,
            training_steps=80,
            eval_steps=60,
            mix=PopulationMix(0.0, 0.15, 0.85),  # sharers are rare
            download_probability=0.2,  # request-limited regime
            seed=3,
        )
        full = run_simulation(SimulationConfig(**base))
        sparse = run_simulation(
            SimulationConfig(**base, overlay_kind="random", overlay_degree=2)
        )
        assert (
            sparse.summary["utility_sharing"] < full.summary["utility_sharing"]
        )

    def test_heterogeneous_capacity(self):
        from repro.sim.config import SimulationConfig
        from repro.sim.engine import CollaborationSimulation

        cfg = SimulationConfig(
            n_agents=50,
            n_articles=6,
            training_steps=30,
            eval_steps=20,
            capacity_sigma=0.8,
            seed=4,
        )
        sim = CollaborationSimulation(cfg)
        caps = sim.peers.upload_capacity
        assert caps.std() > 0.1
        assert caps.mean() == pytest.approx(1.0, abs=0.35)
        sim.run()

    def test_capacity_sigma_validation(self):
        from repro.sim.config import SimulationConfig

        with pytest.raises(ValueError):
            SimulationConfig(capacity_sigma=-0.1)
