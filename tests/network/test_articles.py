"""Tests for the article store, edits and voter eligibility."""

import numpy as np
import pytest

from repro.network.articles import Article, ArticleStore, EditProposal


@pytest.fixture
def store(rng):
    return ArticleStore(n_articles=5, n_peers=20, rng=rng, founders_per_article=4)


class TestBootstrap:
    def test_founder_seeding(self, store):
        for art in store.articles:
            assert len(art.voter_ids) == 4
            assert all(0 <= v < 20 for v in art.voter_ids)

    def test_founders_unique_per_article(self, rng):
        store = ArticleStore(3, 10, rng, founders_per_article=10)
        for art in store.articles:
            assert len(art.voter_ids) == 10

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            ArticleStore(0, 10, rng)
        with pytest.raises(ValueError):
            ArticleStore(1, 10, rng, founders_per_article=0)
        with pytest.raises(ValueError):
            ArticleStore(1, 5, rng, founders_per_article=6)


class TestEligibleVoters:
    def test_filters_by_vote_rights(self, store):
        can_vote = np.zeros(20, dtype=bool)
        voters = store.eligible_voters(0, can_vote)
        assert voters.size == 0
        can_vote[:] = True
        voters = store.eligible_voters(0, can_vote)
        assert set(voters.tolist()) == store.articles[0].voter_ids

    def test_excludes_editor(self, store):
        can_vote = np.ones(20, dtype=bool)
        editor = next(iter(store.articles[0].voter_ids))
        voters = store.eligible_voters(0, can_vote, exclude=editor)
        assert editor not in voters.tolist()


class TestOutcomes:
    def test_accepted_constructive_edit(self, store):
        p = EditProposal(article_id=1, editor_id=13, constructive=True, step=0)
        store.apply_outcome(p, accepted=True)
        art = store.articles[1]
        assert art.quality == 1.0
        assert art.n_versions == 1
        assert 13 in art.voter_ids  # successful editor gains vote rights

    def test_accepted_destructive_edit_lowers_quality(self, store):
        p = EditProposal(article_id=1, editor_id=13, constructive=False, step=0)
        store.apply_outcome(p, accepted=True)
        assert store.articles[1].quality == -1.0

    def test_rejected_edit_leaves_no_trace(self, store):
        art = store.articles[2]
        editor = next(i for i in range(20) if i not in art.voter_ids)
        p = EditProposal(article_id=2, editor_id=editor, constructive=True, step=0)
        store.apply_outcome(p, accepted=False)
        assert art.n_versions == 0
        assert editor not in art.voter_ids

    def test_aggregate_views(self, store):
        store.apply_outcome(EditProposal(0, 1, True, 0), True)
        store.apply_outcome(EditProposal(1, 2, False, 0), True)
        good, bad = store.accepted_counts()
        assert (good, bad) == (1, 1)
        assert store.total_quality() == 0.0


class TestSampling:
    def test_sample_articles_in_range(self, store, rng):
        ids = store.sample_articles(rng, 100)
        assert ids.min() >= 0 and ids.max() < 5

    def test_len_and_getitem(self, store):
        assert len(store) == 5
        assert isinstance(store[0], Article)
