"""Tests for the event log."""

from repro.network.events import (
    DownloadEvent,
    EditEvent,
    EventLog,
    PunishmentEvent,
    VoteEvent,
)


def make_edit(step=0, editor=1, accepted=True):
    return EditEvent(
        step=step,
        article_id=0,
        editor_id=editor,
        constructive=True,
        accepted=accepted,
        for_weight=0.8,
        required_majority=0.6,
        n_voters=5,
    )


class TestEventLog:
    def test_record_and_len(self):
        log = EventLog()
        log.record_download(DownloadEvent(0, 1, 2, 0.5))
        log.record_edit(make_edit())
        log.record_vote(VoteEvent(0, 0, 3, True, True, 0.2))
        log.record_punishment(PunishmentEvent(0, 3, "vote_ban"))
        assert len(log) == 4

    def test_edits_by(self):
        log = EventLog()
        log.record_edit(make_edit(editor=1))
        log.record_edit(make_edit(editor=2))
        log.record_edit(make_edit(editor=1))
        assert sum(1 for _ in log.edits_by(1)) == 2

    def test_votes_by(self):
        log = EventLog()
        log.record_vote(VoteEvent(0, 0, 3, True, True, 0.2))
        log.record_vote(VoteEvent(1, 0, 4, False, False, 0.1))
        assert sum(1 for _ in log.votes_by(3)) == 1

    def test_clear(self):
        log = EventLog()
        log.record_edit(make_edit())
        log.clear()
        assert len(log) == 0
