"""Tests for overlay topologies and churn."""

import numpy as np
import pytest

from repro.network.overlay import ChurnModel, OverlayNetwork


class TestOverlayNetwork:
    @pytest.mark.parametrize("kind", ["full", "random", "smallworld", "scalefree"])
    def test_connected(self, kind, rng):
        net = OverlayNetwork(30, kind=kind, rng=rng)
        import networkx as nx

        assert nx.is_connected(net.graph)

    def test_full_degree(self, rng):
        net = OverlayNetwork(10, kind="full", rng=rng)
        assert all(net.degree(i) == 9 for i in range(10))

    def test_neighbors_symmetric(self, rng):
        net = OverlayNetwork(20, kind="smallworld", rng=rng)
        for i in range(20):
            for j in net.neighbors(i):
                assert i in net.neighbors(int(j)).tolist()

    def test_reachable_sharers(self, rng):
        net = OverlayNetwork(10, kind="full", rng=rng)
        sharing = np.zeros(10, dtype=bool)
        sharing[[2, 5]] = True
        reach = net.reachable_sharers(0, sharing)
        assert set(reach.tolist()) == {2, 5}

    def test_average_degree(self, rng):
        net = OverlayNetwork(10, kind="full", rng=rng)
        assert net.average_degree() == pytest.approx(9.0)

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            OverlayNetwork(10, kind="torus", rng=rng)

    def test_too_small(self, rng):
        with pytest.raises(ValueError):
            OverlayNetwork(1, rng=rng)

    def test_deterministic_given_rng(self, rng_factory):
        n1 = OverlayNetwork(20, kind="random", rng=rng_factory(7))
        n2 = OverlayNetwork(20, kind="random", rng=rng_factory(7))
        assert sorted(n1.graph.edges) == sorted(n2.graph.edges)


class TestChurnModel:
    def test_inactive_by_default(self, rng):
        churn = ChurnModel()
        online = np.ones(10, dtype=bool)
        events = churn.step(rng, online)
        assert events == []
        assert online.all()

    def test_leave_and_join(self, rng):
        churn = ChurnModel(leave_rate=1.0)
        online = np.ones(5, dtype=bool)
        events = churn.step(rng, online)
        assert not online.any()
        assert all(e.kind == "leave" for e in events)
        churn = ChurnModel(join_rate=1.0)
        events = churn.step(rng, online)
        assert online.all()
        assert all(e.kind == "join" for e in events)

    def test_whitewash_events(self, rng):
        churn = ChurnModel(whitewash_rate=1.0)
        online = np.ones(4, dtype=bool)
        events = churn.step(rng, online)
        assert sum(e.kind == "whitewash" for e in events) == 4

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(leave_rate=1.5)
        with pytest.raises(ValueError):
            ChurnModel(whitewash_rate=-0.1)

    def test_active_flag(self):
        assert not ChurnModel().active
        assert ChurnModel(leave_rate=0.1).active
