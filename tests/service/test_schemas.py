"""Validation tests for the service submit-body schemas."""

import pytest

from repro.service.schemas import (
    MAX_CONFIGS_PER_JOB,
    SchemaError,
    parse_submit,
)
from repro.sim.config import SimulationConfig
from repro.store.compose import resolve_scenario
from repro.store.hashing import canonical_config_dict, config_hash


class TestParseSubmitShapes:
    def test_rejects_non_object_bodies(self):
        for body in (None, 3, "x", ["scenario"], True):
            with pytest.raises(SchemaError, match="JSON object"):
                parse_submit(body)

    def test_requires_exactly_one_spelling(self):
        with pytest.raises(SchemaError, match="exactly one"):
            parse_submit({})
        with pytest.raises(SchemaError, match="exactly one"):
            parse_submit({"scenario": "base/default", "config": {}})

    def test_scenario_expansion_matches_pack(self):
        spec = parse_submit({"scenario": "base/default", "fast": True, "seeds": 2})
        pack = resolve_scenario("base/default")
        expected = pack.expand(fast=True, n_seeds=2)
        assert [config_hash(c) for c in spec.configs] == [
            config_hash(c) for c in expected
        ]
        assert spec.label == "base/default"

    def test_scenario_algebra_spec_resolves(self):
        spec = parse_submit(
            {"scenario": "base/default+overlay/sparse", "fast": True, "seeds": 1}
        )
        pack = resolve_scenario("base/default+overlay/sparse")
        expected = pack.expand(fast=True, n_seeds=1)
        assert [config_hash(c) for c in spec.configs] == [
            config_hash(c) for c in expected
        ]
        assert spec.label == "base/default+overlay/sparse"

    def test_unknown_scenario_is_schema_error(self):
        with pytest.raises(SchemaError):
            parse_submit({"scenario": "no/such/pack"})

    def test_scenario_knob_types_checked(self):
        with pytest.raises(SchemaError, match="'fast'"):
            parse_submit({"scenario": "base/default", "fast": "yes"})
        with pytest.raises(SchemaError, match="'seeds'"):
            parse_submit({"scenario": "base/default", "seeds": 0})
        with pytest.raises(SchemaError, match="'seeds'"):
            parse_submit({"scenario": "base/default", "seeds": True})
        with pytest.raises(SchemaError, match="'overrides'"):
            parse_submit({"scenario": "base/default", "overrides": [1]})


class TestParseSubmitConfigs:
    def test_single_config_round_trips_hash(self, tiny):
        cfg = tiny(seed=7)
        spec = parse_submit({"config": canonical_config_dict(cfg)})
        assert len(spec.configs) == 1
        assert config_hash(spec.configs[0]) == config_hash(cfg)

    def test_config_list_preserves_order(self, tiny):
        cfgs = [tiny(seed=s) for s in range(3)]
        spec = parse_submit(
            {"configs": [canonical_config_dict(c) for c in cfgs]}
        )
        assert [config_hash(c) for c in spec.configs] == [
            config_hash(c) for c in cfgs
        ]

    def test_invalid_config_reports_index(self):
        with pytest.raises(SchemaError, match="config #1"):
            parse_submit({"configs": [canonical_config_dict(
                SimulationConfig()), {"n_agents": -5}]})

    def test_non_dict_config_entry(self):
        with pytest.raises(SchemaError, match="config #0 must be an object"):
            parse_submit({"configs": [17]})

    def test_configs_must_be_a_list(self):
        with pytest.raises(SchemaError, match="must be a list"):
            parse_submit({"configs": {"n_agents": 8}})

    def test_unknown_field_rejected(self, tiny):
        payload = canonical_config_dict(tiny())
        payload["definitely_not_a_field"] = 1
        with pytest.raises(SchemaError):
            parse_submit({"config": payload})


class TestParseSubmitPolicy:
    def test_empty_expansion_rejected(self):
        with pytest.raises(SchemaError, match="zero configs"):
            parse_submit({"configs": []})

    def test_per_job_cap_enforced(self, tiny_payload):
        body = {"configs": [tiny_payload()] * (MAX_CONFIGS_PER_JOB + 1)}
        with pytest.raises(SchemaError, match="per-job cap"):
            parse_submit(body)

    def test_collect_events_rejected(self, tiny):
        payload = canonical_config_dict(tiny(collect_events=True))
        with pytest.raises(SchemaError, match="collect_events"):
            parse_submit({"config": payload})
