"""End-to-end HTTP tests: real sockets, real store, real (tiny) compute.

Covers the acceptance criteria of the service PR: concurrent duplicate
submissions compute once while both clients complete, SSE delivers
progress while compute is still running, and a full queue answers with
backpressure instead of accepting the job.
"""

import asyncio
import threading

from repro.service import ServiceSettings, SimulationService
from repro.sim._sweep import run_sweep
from repro.store.hashing import config_hash
from repro.store._runstore import RunStore

from svc_helpers import http, make_tiny, sse_open, tiny_dict


def run(coro):
    return asyncio.run(coro)


def make_service(tmp_path, runner=None, **settings_kw):
    settings_kw.setdefault("port", 0)
    settings_kw.setdefault("workers", 2)
    store = RunStore(tmp_path / "runstore")
    service = SimulationService(
        store, ServiceSettings(**settings_kw), runner=runner
    )
    return store, service


class GatedRunner:
    """Real compute that pauses after the first config until released."""

    def __init__(self, store):
        self.store = store
        self.first_done = threading.Event()
        self.release = threading.Event()

    def __call__(self, configs, progress):
        def paced(done, total, index, result, cached, stats):
            progress(done, total, index, result, cached, stats)
            if not self.first_done.is_set():
                self.first_done.set()
                assert self.release.wait(timeout=30), "gate never released"

        run_sweep(configs, backend="serial", store=self.store, progress=paced)


class TestEndpoints:
    def test_index_health_metrics_and_errors(self, tmp_path):
        async def body():
            _, svc = make_service(tmp_path)
            await svc.start()
            try:
                r = await http(svc.port, "GET", "/")
                assert r.status == 200
                assert "POST /jobs" in r.json()["endpoints"]

                r = await http(svc.port, "GET", "/healthz")
                assert r.status == 200
                health = r.json()
                assert health["status"] == "ok"
                assert health["queue_depth"] == 0

                r = await http(svc.port, "GET", "/metrics")
                assert r.status == 200
                assert r.headers["content-type"].startswith("text/plain")

                r = await http(svc.port, "GET", "/jobs/nope")
                assert r.status == 404
                r = await http(svc.port, "DELETE", "/jobs")
                assert r.status == 405
                r = await http(svc.port, "GET", "/no/such/thing")
                assert r.status == 404
            finally:
                await svc.stop()

        run(body())

    def test_submit_rejects_bad_bodies(self, tmp_path):
        async def body():
            _, svc = make_service(tmp_path)
            await svc.start()
            try:
                r = await http(svc.port, "POST", "/jobs")
                assert r.status == 400
                r = await http(svc.port, "POST", "/jobs", body={"x": 1})
                assert r.status == 400
                assert "exactly one" in r.json()["error"]
                r = await http(
                    svc.port, "POST", "/jobs", body={"scenario": "no/such"}
                )
                assert r.status == 400
            finally:
                await svc.stop()

        run(body())

    def test_submit_compute_status_and_resubmit_cached(self, tmp_path):
        async def body():
            store, svc = make_service(tmp_path)
            await svc.start()
            try:
                payload = {"configs": [tiny_dict(seed=s) for s in range(2)]}
                r = await http(svc.port, "POST", "/jobs", body=payload)
                assert r.status == 201
                job = r.json()
                assert r.headers["location"] == f"/jobs/{job['id']}"
                assert job["total"] == 2

                while True:
                    r = await http(svc.port, "GET", f"/jobs/{job['id']}")
                    view = r.json()
                    if view["state"] in ("completed", "failed"):
                        break
                    await asyncio.sleep(0.05)
                assert view["state"] == "completed"
                assert view["computed"] == 2
                assert len(view["results"]) == 2
                for entry in view["results"]:
                    assert entry["summary"], "per-config summary missing"
                assert len(store) == 2

                # The same grid again: served from cache, done on arrival.
                r = await http(svc.port, "POST", "/jobs", body=payload)
                assert r.status == 201
                assert r.json()["state"] == "completed"
                assert r.json()["cached"] == 2
                assert len(store) == 2

                cached_job_id = r.json()["id"]
                r = await http(svc.port, "GET", "/jobs")
                listing = r.json()
                assert listing["count"] == 2
                # Most recent first: the cached resubmission leads.
                assert listing["jobs"][0]["id"] == cached_job_id
                assert {j["id"] for j in listing["jobs"]} == {
                    job["id"], cached_job_id,
                }
            finally:
                await svc.stop()

        run(body())


class TestConcurrentDedup:
    def test_two_clients_same_scenario_compute_once(self, tmp_path):
        """The headline acceptance test: N concurrent duplicate clients,
        one computed run in the store, every client completed."""

        async def body():
            store, svc = make_service(tmp_path, workers=2)
            await svc.start()
            try:
                payload = {"configs": [tiny_dict(seed=s) for s in range(3)]}

                async def client():
                    r = await http(svc.port, "POST", "/jobs", body=payload)
                    assert r.status == 201
                    job_id = r.json()["id"]
                    while True:
                        r = await http(svc.port, "GET", f"/jobs/{job_id}")
                        view = r.json()
                        if view["state"] in ("completed", "failed"):
                            return view
                        await asyncio.sleep(0.02)

                views = await asyncio.gather(client(), client())
                for view in views:
                    assert view["state"] == "completed"
                    assert view["done"] == 3
                # Exactly one stored record per unique config — nothing
                # was computed twice, nothing is missing.
                assert len(store) == 3
                hashes = {
                    e["config_hash"] for v in views for e in v["results"]
                }
                assert hashes == set(store.iter_hashes())
                # The two jobs are distinct even though the work was shared.
                assert views[0]["id"] != views[1]["id"]
            finally:
                await svc.stop()

        run(body())


class TestSse:
    def test_progress_streams_during_compute(self, tmp_path):
        """A progress event must arrive while the job is still running."""

        async def body():
            store = RunStore(tmp_path / "runstore")
            runner = GatedRunner(store)
            svc = SimulationService(
                store,
                ServiceSettings(port=0, workers=1, batch_width=4),
                runner=runner,
            )
            await svc.start()
            try:
                payload = {"configs": [tiny_dict(seed=s) for s in range(2)]}
                r = await http(svc.port, "POST", "/jobs", body=payload)
                job_id = r.json()["id"]
                stream = await sse_open(svc.port, f"/jobs/{job_id}/events")
                seen = {}
                while "progress" not in seen:
                    ev = await stream.next_event(timeout=30)
                    seen[ev["event"]] = ev
                # The runner is gated after config 1 of 2: compute is
                # provably still in flight while this progress event is
                # already on the wire.
                r = await http(svc.port, "GET", f"/jobs/{job_id}")
                assert r.json()["state"] == "running"
                progress = seen["progress"]["data"]
                assert progress["done"] == 1 and progress["total"] == 2
                assert progress["source"] == "computed"
                assert progress["sweep"]["computed"] == 1

                runner.release.set()
                events = await stream.collect_until_terminal(timeout=30)
                kinds = [e["event"] for e in events]
                assert kinds[-1] == "completed"
                assert kinds.count("progress") == 2
                await stream.close()
                # Replay: a late subscriber sees the whole lifecycle.
                replay = await sse_open(svc.port, f"/jobs/{job_id}/events")
                replayed = await replay.collect_until_terminal(timeout=10)
                assert [e["event"] for e in replayed] == [
                    "queued", "started", "progress", "progress", "completed",
                ]
                assert [e["seq"] for e in replayed] == [1, 2, 3, 4, 5]
                await replay.close()
            finally:
                runner.release.set()
                await svc.stop()

        run(body())

    def test_events_for_unknown_job_404(self, tmp_path):
        async def body():
            _, svc = make_service(tmp_path)
            await svc.start()
            try:
                r = await http(svc.port, "GET", "/jobs/ghost/events")
                assert r.status == 404
            finally:
                await svc.stop()

        run(body())


class TestBackpressureHttp:
    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        async def body():
            store = RunStore(tmp_path / "runstore")
            hold = threading.Event()

            def blocking_runner(configs, progress):
                assert hold.wait(timeout=30)
                run_sweep(
                    configs, backend="serial", store=store, progress=progress
                )

            svc = SimulationService(
                store,
                ServiceSettings(
                    port=0, workers=1, max_pending=1, batch_width=1
                ),
                runner=blocking_runner,
            )
            await svc.start()
            try:
                # First job occupies the lone worker; second fills the
                # one-slot queue; the third must be pushed back.
                r1 = await http(
                    svc.port, "POST", "/jobs",
                    body={"config": tiny_dict(seed=0)},
                )
                assert r1.status == 201
                while svc.manager.queue_depth != 0:
                    await asyncio.sleep(0.01)  # worker claimed job 1
                r2 = await http(
                    svc.port, "POST", "/jobs",
                    body={"config": tiny_dict(seed=1)},
                )
                assert r2.status == 201
                r3 = await http(
                    svc.port, "POST", "/jobs",
                    body={"config": tiny_dict(seed=2)},
                )
                assert r3.status == 429
                assert int(r3.headers["retry-after"]) >= 1
                assert "queue full" in r3.json()["error"]

                hold.set()
                # Backpressure is transient: the same submission goes
                # through once the queue drains.
                for _ in range(600):
                    r4 = await http(
                        svc.port, "POST", "/jobs",
                        body={"config": tiny_dict(seed=2)},
                    )
                    if r4.status == 201:
                        break
                    assert r4.status == 429
                    await asyncio.sleep(0.05)
                assert r4.status == 201
                text = (await http(svc.port, "GET", "/metrics")).body.decode()
                assert "service_backpressure_total" in text
            finally:
                hold.set()
                await svc.stop()

        run(body())


class TestShutdown:
    def test_stop_wakes_streams_and_health_reports_closing(self, tmp_path):
        async def body():
            store = RunStore(tmp_path / "runstore")
            # Pre-seed the store so a submitted job completes instantly,
            # then hold a stream on a *second*, never-completing job.
            cfg = make_tiny(seed=9)
            run_sweep([cfg], backend="serial", store=store)
            hold = threading.Event()

            def stuck_runner(configs, progress):
                hold.wait(timeout=5)
                raise RuntimeError("never ran")

            svc = SimulationService(
                store,
                ServiceSettings(port=0, workers=1, shutdown_timeout_s=10),
                runner=stuck_runner,
            )
            await svc.start()
            r = await http(
                svc.port, "POST", "/jobs", body={"config": tiny_dict(seed=11)}
            )
            job_id = r.json()["id"]
            stream = await sse_open(svc.port, f"/jobs/{job_id}/events")
            stop_task = asyncio.create_task(svc.stop())
            hold.set()
            events = await stream.collect_until_terminal(timeout=15)
            assert events[-1]["event"] == "failed"
            await stream.close()
            await stop_task
            job = svc.manager.jobs[job_id]
            assert job.state == "failed"

        run(body())
