"""Shared fixtures for the service tests (helpers live in svc_helpers)."""

import pytest
from svc_helpers import http, make_tiny, sse_open, tiny_dict


@pytest.fixture
def tiny():
    """Factory fixture over :func:`svc_helpers.make_tiny`."""
    return make_tiny


@pytest.fixture
def tiny_payload():
    """Factory fixture over :func:`svc_helpers.tiny_dict`."""
    return tiny_dict


@pytest.fixture
def http_client():
    """The raw-socket HTTP request coroutine."""
    return http


@pytest.fixture
def sse_client():
    """The SSE stream opener coroutine."""
    return sse_open
