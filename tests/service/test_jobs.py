"""JobManager tests: dedup, admission atomicity, failure, shutdown.

All compute goes through an injected fake runner so the tests are
sleep-bound, not simulation-bound, and a runner can be held open with a
threading gate to freeze the "while computing" state deterministically.
"""

import asyncio
import threading
import time
from types import SimpleNamespace

import pytest

from repro.service.hub import EventHub
from repro.service.jobs import JobManager, QueueFull, ServiceClosing
from repro.service.schemas import SubmitSpec
from repro.sim.config import SimulationConfig
from repro.store.hashing import config_hash


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=8, n_articles=2, founders_per_article=2,
        training_steps=5, eval_steps=5, seed=seed, **kw,
    )


class FakeStore:
    """Just enough RunStore surface for the manager: a record dict."""

    def __init__(self):
        self.records = {}
        self.refreshes = 0

    def refresh(self):
        self.refreshes += 1
        return 0

    def contains_hash(self, h):
        return h in self.records

    def get_record(self, h):
        rec = self.records.get(h)
        if rec is None:
            return None
        return SimpleNamespace(summary=rec)


class FakeRunner:
    """A runner that lands every config instantly (optionally gated)."""

    def __init__(self, store, gate=None, fail_with=None):
        self.store = store
        self.gate = gate
        self.fail_with = fail_with
        self.calls = []
        self.computed = []

    def __call__(self, configs, progress):
        self.calls.append(list(configs))
        if self.gate is not None:
            assert self.gate.wait(timeout=30), "runner gate never opened"
        if self.fail_with is not None:
            raise self.fail_with
        stats = SimpleNamespace(elapsed_s=0.01, eta_s=0.0, cached=0,
                                computed=len(configs))
        for i, cfg in enumerate(configs):
            h = config_hash(cfg)
            summary = {"shared_files": float(i)}
            self.store.records[h] = summary
            self.computed.append(h)
            result = SimpleNamespace(summary=summary, wall_time_s=0.001)
            progress(i + 1, len(configs), i, result, False, stats)


def spec_of(*configs, label="test"):
    return SubmitSpec(configs=tuple(configs), label=label)


async def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        await asyncio.sleep(0.01)


def run(coro):
    return asyncio.run(coro)


class TestDedup:
    def test_cached_configs_complete_without_compute(self):
        async def body():
            store = FakeStore()
            runner = FakeRunner(store)
            cfg = tiny()
            store.records[config_hash(cfg)] = {"shared_files": 1.0}
            mgr = JobManager(store, runner=runner, workers=1)
            await mgr.start()
            try:
                job = mgr.submit(spec_of(cfg))
                assert job.state == "completed"
                assert job.n_cached == 1 and job.n_computed == 0
                assert runner.calls == []
                slot = job.slots[config_hash(cfg)]
                assert slot["source"] == "cache"
                assert slot["summary"] == {"shared_files": 1.0}
            finally:
                await mgr.close(timeout_s=2)

        run(body())

    def test_duplicate_configs_in_one_job_collapse(self):
        async def body():
            store = FakeStore()
            runner = FakeRunner(store)
            mgr = JobManager(store, runner=runner, workers=1)
            await mgr.start()
            try:
                cfg = tiny()
                job = mgr.submit(spec_of(cfg, cfg, cfg))
                assert job.total == 1
                assert job.submitted == 3
                await wait_for(lambda: job.finished)
                assert job.state == "completed"
                assert len(runner.computed) == 1
            finally:
                await mgr.close(timeout_s=2)

        run(body())

    def test_inflight_dedup_one_compute_many_jobs(self):
        async def body():
            store = FakeStore()
            gate = threading.Event()
            runner = FakeRunner(store, gate=gate)
            mgr = JobManager(store, runner=runner, workers=1)
            await mgr.start()
            try:
                cfg = tiny()
                job_a = mgr.submit(spec_of(cfg, label="a"))
                # Wait until the worker has claimed the unit (blocked in
                # the gated runner) so the second submit joins mid-compute.
                await wait_for(lambda: len(runner.calls) == 1)
                job_b = mgr.submit(spec_of(cfg, label="b"))
                assert mgr.inflight == 1  # no second unit was created
                assert job_b.state == "running"  # joined a running unit
                gate.set()
                await wait_for(lambda: job_a.finished and job_b.finished)
                assert job_a.state == "completed"
                assert job_b.state == "completed"
                assert len(runner.computed) == 1  # exactly one compute
                h = config_hash(cfg)
                assert job_a.slots[h]["summary"] == job_b.slots[h]["summary"]
            finally:
                gate.set()
                await mgr.close(timeout_s=2)

        run(body())


class TestBackpressure:
    def test_queue_full_rejects_whole_submission(self):
        async def body():
            store = FakeStore()
            gate = threading.Event()
            runner = FakeRunner(store, gate=gate)
            mgr = JobManager(
                store, runner=runner, workers=1, max_pending=2, batch_width=1
            )
            await mgr.start()
            try:
                # Occupy the single worker so queued units stay queued.
                mgr.submit(spec_of(tiny(seed=100)))
                await wait_for(lambda: len(runner.calls) == 1)
                mgr.submit(spec_of(tiny(seed=101), tiny(seed=102)))
                assert mgr.queue_depth == 2
                jobs_before = len(mgr.jobs)
                # Needs 2 fresh slots, 0 free: refused atomically.
                with pytest.raises(QueueFull) as exc:
                    mgr.submit(spec_of(tiny(seed=103), tiny(seed=104)))
                assert exc.value.retry_after_s >= 1
                assert len(mgr.jobs) == jobs_before  # no partial admission
                assert mgr.queue_depth == 2
                assert mgr.inflight == 3
                gate.set()
                await wait_for(lambda: mgr.inflight == 0)
                # Capacity is back: the same submission is admitted.
                job = mgr.submit(spec_of(tiny(seed=103), tiny(seed=104)))
                await wait_for(lambda: job.finished)
                assert job.state == "completed"
            finally:
                gate.set()
                await mgr.close(timeout_s=2)

        run(body())

    def test_rejection_counts_backpressure_metric(self):
        async def body():
            store = FakeStore()
            gate = threading.Event()
            runner = FakeRunner(store, gate=gate)
            mgr = JobManager(
                store, runner=runner, workers=1, max_pending=1, batch_width=1
            )
            await mgr.start()
            try:
                mgr.submit(spec_of(tiny(seed=0)))
                await wait_for(lambda: len(runner.calls) == 1)
                mgr.submit(spec_of(tiny(seed=1)))
                with pytest.raises(QueueFull):
                    mgr.submit(spec_of(tiny(seed=2)))
                snap = mgr.metrics.snapshot()
                assert snap["service_backpressure_total"][0]["value"] == 1.0
            finally:
                gate.set()
                await mgr.close(timeout_s=2)

        run(body())

    def test_cached_and_inflight_slots_cost_no_capacity(self):
        async def body():
            store = FakeStore()
            gate = threading.Event()
            runner = FakeRunner(store, gate=gate)
            mgr = JobManager(
                store, runner=runner, workers=1, max_pending=1, batch_width=1
            )
            await mgr.start()
            try:
                cached_cfg = tiny(seed=50)
                store.records[config_hash(cached_cfg)] = {"shared_files": 0.0}
                running_cfg = tiny(seed=51)
                mgr.submit(spec_of(running_cfg))
                await wait_for(lambda: len(runner.calls) == 1)
                queued_cfg = tiny(seed=52)
                mgr.submit(spec_of(queued_cfg))  # fills the queue bound
                # cached + joined-in-flight + joined-queued: zero fresh
                # units, so admission succeeds despite the full queue.
                job = mgr.submit(spec_of(cached_cfg, running_cfg, queued_cfg))
                assert job.total == 3
                gate.set()
                await wait_for(lambda: job.finished)
                assert job.state == "completed"
                assert job.n_cached == 1 and job.n_computed == 2
            finally:
                gate.set()
                await mgr.close(timeout_s=2)

        run(body())


class TestFailureAndShutdown:
    def test_runner_failure_fails_waiting_jobs(self):
        async def body():
            store = FakeStore()
            runner = FakeRunner(store, fail_with=RuntimeError("kernel exploded"))
            hub = EventHub()
            mgr = JobManager(store, hub=hub, runner=runner, workers=1)
            await mgr.start()
            try:
                job = mgr.submit(spec_of(tiny()))
                await wait_for(lambda: job.finished)
                assert job.state == "failed"
                assert "kernel exploded" in job.error
                assert mgr.inflight == 0
                history, _, _ = hub.subscribe(job.id)
                assert history[-1].event == "failed"
            finally:
                await mgr.close(timeout_s=2)

        run(body())

    def test_close_fails_queued_jobs_and_refuses_new(self):
        async def body():
            store = FakeStore()
            gate = threading.Event()
            runner = FakeRunner(store, gate=gate)
            mgr = JobManager(
                store, runner=runner, workers=1, max_pending=8, batch_width=1
            )
            await mgr.start()
            running = mgr.submit(spec_of(tiny(seed=0)))
            await wait_for(lambda: len(runner.calls) == 1)
            queued = mgr.submit(spec_of(tiny(seed=1)))
            gate.set()  # let the in-flight batch land during close
            await mgr.close(timeout_s=10)
            assert queued.state == "failed"
            assert "shutting down" in queued.error
            assert running.state == "completed"  # graceful: compute landed
            with pytest.raises(ServiceClosing):
                mgr.submit(spec_of(tiny(seed=2)))

        run(body())

    def test_submit_refreshes_store_first(self):
        async def body():
            store = FakeStore()
            runner = FakeRunner(store)
            mgr = JobManager(store, runner=runner, workers=1)
            await mgr.start()
            try:
                before = store.refreshes
                cfg = tiny()
                store.records[config_hash(cfg)] = {"shared_files": 2.0}
                job = mgr.submit(spec_of(cfg))
                assert store.refreshes == before + 1
                assert job.state == "completed"  # peer result was seen
            finally:
                await mgr.close(timeout_s=2)

        run(body())


class TestEvents:
    def test_lifecycle_event_order(self):
        async def body():
            store = FakeStore()
            hub = EventHub()
            runner = FakeRunner(store)
            mgr = JobManager(store, hub=hub, runner=runner, workers=1)
            await mgr.start()
            try:
                job = mgr.submit(spec_of(tiny(seed=0), tiny(seed=1)))
                await wait_for(lambda: job.finished)
                history, dropped, _ = hub.subscribe(job.id)
                assert dropped == 0
                kinds = [ev.event for ev in history]
                assert kinds[0] == "queued"
                assert kinds[1] == "started"
                assert kinds.count("progress") == 2
                assert kinds[-1] == "completed"
                final = history[-1].data
                assert final["computed"] == 2
                assert len(final["results"]) == 2
                progress = [ev for ev in history if ev.event == "progress"]
                assert progress[0].data["sweep"]["computed"] >= 1
            finally:
                await mgr.close(timeout_s=2)

        run(body())

    def test_validation_bounds(self):
        store = FakeStore()
        with pytest.raises(ValueError):
            JobManager(store, workers=0)
        with pytest.raises(ValueError):
            JobManager(store, max_pending=0)
        with pytest.raises(ValueError):
            JobManager(store, batch_width=0)
