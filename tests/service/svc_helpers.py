"""Service-test toolkit: tiny configs plus a raw asyncio HTTP/SSE client.

The client speaks HTTP/1.1 over :func:`asyncio.open_connection` directly
— no third-party HTTP library, matching the server's stdlib-only stance
— and because it runs on the same event loop as the service under test,
every test exercises the real socket path without extra threads.
"""

import asyncio
import json

from repro.sim.config import SimulationConfig
from repro.store.hashing import canonical_config_dict


def make_tiny(seed: int = 0, **kw) -> SimulationConfig:
    """A config small enough to simulate in milliseconds."""
    return SimulationConfig(
        n_agents=8, n_articles=2, founders_per_article=2,
        training_steps=5, eval_steps=5, seed=seed, **kw,
    )


def tiny_dict(seed: int = 0, **kw) -> dict:
    """The canonical dict form of :func:`make_tiny` (the HTTP payload)."""
    return canonical_config_dict(make_tiny(seed=seed, **kw))


class HttpResponse:
    """One parsed HTTP response: status, headers (lower-cased), body."""

    def __init__(self, status: int, headers: dict, body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        """The body decoded as JSON."""
        return json.loads(self.body)


def _parse_head(head: bytes) -> tuple[int, dict]:
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return status, headers


async def http(
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    timeout: float = 30.0,
) -> HttpResponse:
    """One request against a local service; reads until EOF."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
            ).encode()
            + payload
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status, headers = _parse_head(head)
    return HttpResponse(status, headers, rest)


class SseClient:
    """An open ``/jobs/<id>/events`` stream read one event at a time."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self.events: list[dict] = []

    async def next_event(self, timeout: float = 30.0) -> dict:
        """The next non-comment SSE event as ``{seq, event, data}``."""
        fields: dict = {}
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            budget = deadline - asyncio.get_running_loop().time()
            line = await asyncio.wait_for(self._reader.readline(), budget)
            if not line:
                raise EOFError("SSE stream closed mid-event")
            text = line.decode("utf-8").rstrip("\n")
            if not text:  # blank line = event boundary
                if fields:
                    ev = {
                        "seq": int(fields.get("id", 0)),
                        "event": fields.get("event", "message"),
                        "data": json.loads(fields.get("data", "null")),
                    }
                    self.events.append(ev)
                    return ev
                continue
            if text.startswith(":"):  # keep-alive comment
                continue
            name, _, value = text.partition(":")
            fields[name] = value.lstrip(" ")

    async def collect_until_terminal(self, timeout: float = 60.0) -> list[dict]:
        """Read events until ``completed``/``failed``; returns all seen."""
        while True:
            ev = await self.next_event(timeout=timeout)
            if ev["event"] in ("completed", "failed"):
                return list(self.events)

    async def close(self) -> None:
        """Drop the stream connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def sse_open(port: int, path: str) -> SseClient:
    """Open an SSE stream and consume the response head."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status, _headers = _parse_head(head.rstrip(b"\r\n"))
    if status != 200:
        body = await reader.read()
        writer.close()
        raise AssertionError(f"SSE open failed: {status} {body!r}")
    return SseClient(reader, writer)
