"""Concurrent-client load test: dedup correctness under real traffic.

N async clients hammer one service with overlapping config grids drawn
from a small pool of unique configs.  The invariants under load are the
whole point of the service layer:

* every unique config is computed exactly once (store record count and
  the ``service_configs_total{source="computed"}`` counter agree);
* every client's every job reaches ``completed``, including the ones
  that were initially pushed back — a 429 means retry, never data loss;
* the queue bound holds: pending depth never exceeds ``max_pending``.

The per-PR run keeps the client count small (the tier-1 suite must stay
fast); the nightly lane re-runs it with ``SERVICE_LOAD_CLIENTS=24`` the
same way the scale benchmarks re-run with ``SCALE_BENCH_AGENTS``.
"""

import asyncio
import os
import random

from svc_helpers import http, tiny_dict

from repro.service import ServiceSettings, SimulationService
from repro.store._runstore import RunStore

N_CLIENTS = int(os.environ.get("SERVICE_LOAD_CLIENTS", "6"))
N_UNIQUE = int(os.environ.get("SERVICE_LOAD_UNIQUE", "10"))
JOBS_PER_CLIENT = int(os.environ.get("SERVICE_LOAD_JOBS", "3"))


def test_overlapping_grids_compute_each_config_once(tmp_path):
    async def body():
        store = RunStore(tmp_path / "runstore")
        svc = SimulationService(
            store,
            ServiceSettings(port=0, workers=2, max_pending=8, batch_width=4),
        )
        await svc.start()
        pool = [tiny_dict(seed=s) for s in range(N_UNIQUE)]
        stats = {"submitted": 0, "backpressured": 0, "max_depth": 0}

        async def submit_with_retry(rng):
            grid = rng.sample(pool, k=rng.randint(2, min(6, N_UNIQUE)))
            while True:
                r = await http(svc.port, "POST", "/jobs", body={"configs": grid})
                if r.status == 201:
                    stats["submitted"] += 1
                    return r.json()["id"], len(grid)
                assert r.status == 429, r.body
                stats["backpressured"] += 1
                retry_after = int(r.headers["retry-after"])
                assert retry_after >= 1
                await asyncio.sleep(min(retry_after, 0.05))

        async def poll_to_completion(job_id, n_configs):
            while True:
                r = await http(svc.port, "GET", f"/jobs/{job_id}")
                view = r.json()
                stats["max_depth"] = max(
                    stats["max_depth"], svc.manager.queue_depth
                )
                if view["state"] in ("completed", "failed"):
                    return view
                await asyncio.sleep(0.02)

        async def client(cid):
            rng = random.Random(1000 + cid)
            views = []
            for _ in range(JOBS_PER_CLIENT):
                job_id, n = await submit_with_retry(rng)
                view = await poll_to_completion(job_id, n)
                views.append(view)
            return views

        try:
            per_client = await asyncio.gather(
                *(client(c) for c in range(N_CLIENTS))
            )
        finally:
            await svc.stop()

        all_views = [v for views in per_client for v in views]
        assert len(all_views) == N_CLIENTS * JOBS_PER_CLIENT
        assert all(v["state"] == "completed" for v in all_views)
        for view in all_views:
            assert view["done"] == view["total"]
            assert all(e["summary"] for e in view["results"])

        # Exactly-once compute: one store record per touched config, and
        # the computed counter agrees (nothing ran twice and was merely
        # deduplicated at persistence time).
        touched = {
            e["config_hash"] for v in all_views for e in v["results"]
        }
        assert set(store.iter_hashes()) == touched
        snap = svc.metrics.snapshot()
        computed = sum(
            entry["value"]
            for entry in snap["service_configs_total"]
            if entry["labels"]["source"] == "computed"
        )
        assert computed == len(touched)
        assert stats["max_depth"] <= svc.manager.max_pending

    asyncio.run(body())
