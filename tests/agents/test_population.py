"""Tests for population mixes and the paper's mixture sweep."""

import pytest

from repro.agents.population import PopulationMix, mixture_sweep
from repro.network.peer import ALTRUISTIC, IRRATIONAL, RATIONAL


class TestPopulationMix:
    def test_counts_sum_to_n(self):
        mix = PopulationMix(rational=0.34, altruistic=0.33, irrational=0.33)
        for n in (1, 7, 99, 100):
            counts = mix.counts(n)
            assert sum(counts) == n

    def test_exact_fractions(self):
        mix = PopulationMix(0.5, 0.3, 0.2)
        assert mix.counts(10) == (5, 3, 2)

    def test_build_composition(self, rng):
        mix = PopulationMix(0.2, 0.5, 0.3)
        types = mix.build(100, rng)
        assert (types == RATIONAL).sum() == 20
        assert (types == ALTRUISTIC).sum() == 50
        assert (types == IRRATIONAL).sum() == 30

    def test_build_shuffles(self, rng_factory):
        mix = PopulationMix(0.5, 0.5, 0.0)
        unshuffled = mix.build(10)
        shuffled = mix.build(10, rng_factory(3))
        assert sorted(unshuffled.tolist()) == sorted(shuffled.tolist())
        # Unshuffled is blocked; shuffled should (with this seed) differ.
        assert unshuffled.tolist() != shuffled.tolist()

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PopulationMix(0.5, 0.5, 0.5)

    def test_no_negative_fractions(self):
        with pytest.raises(ValueError):
            PopulationMix(1.2, -0.1, -0.1)

    def test_describe(self):
        mix = PopulationMix(1.0, 0.0, 0.0)
        assert "100% rational" in mix.describe()


class TestMixtureSweep:
    def test_paper_rule(self):
        """Varied type takes x%, the others split the rest equally."""
        mixes = mixture_sweep("altruistic", [10, 50, 90])
        assert mixes[0].altruistic == pytest.approx(0.10)
        assert mixes[0].rational == pytest.approx(0.45)
        assert mixes[0].irrational == pytest.approx(0.45)
        assert mixes[2].altruistic == pytest.approx(0.90)
        assert mixes[2].rational == pytest.approx(0.05)

    def test_default_range(self):
        mixes = mixture_sweep("irrational")
        assert len(mixes) == 9
        assert mixes[0].irrational == pytest.approx(0.10)
        assert mixes[-1].irrational == pytest.approx(0.90)

    def test_all_types_supported(self):
        for vary in ("rational", "altruistic", "irrational"):
            mixes = mixture_sweep(vary, [30])
            assert getattr(mixes[0], vary) == pytest.approx(0.30)

    def test_validation(self):
        with pytest.raises(ValueError):
            mixture_sweep("chaotic")
        with pytest.raises(ValueError):
            mixture_sweep("rational", [150])
