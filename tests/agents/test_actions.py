"""Tests for the action spaces (paper IV-B)."""

import numpy as np
import pytest

from repro.agents.actions import EditActionSpace, SharingActionSpace


class TestSharingActionSpace:
    def test_paper_grid(self):
        space = SharingActionSpace()
        assert space.n_actions == 9
        assert space.levels.tolist() == [0.0, 0.5, 1.0]

    def test_decode_all(self):
        space = SharingActionSpace()
        bw, files = space.decode(np.arange(9))
        # bandwidth is the major index, files the minor.
        assert bw.tolist() == [0, 0, 0, 0.5, 0.5, 0.5, 1, 1, 1]
        assert files.tolist() == [0, 0.5, 1, 0, 0.5, 1, 0, 0.5, 1]

    def test_encode_decode_roundtrip(self):
        space = SharingActionSpace()
        for b in range(3):
            for f in range(3):
                a = space.encode(b, f)
                bw, files = space.decode(np.array([a]))
                assert bw[0] == space.levels[b]
                assert files[0] == space.levels[f]

    def test_max_min_actions(self):
        space = SharingActionSpace()
        bw, files = space.decode(np.array([space.max_action]))
        assert bw[0] == 1.0 and files[0] == 1.0
        bw, files = space.decode(np.array([space.min_action]))
        assert bw[0] == 0.0 and files[0] == 0.0

    def test_custom_levels(self):
        space = SharingActionSpace(np.array([0.0, 0.25, 0.5, 1.0]))
        assert space.n_actions == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            SharingActionSpace(np.array([0.5]))
        with pytest.raises(ValueError):
            SharingActionSpace(np.array([0.0, 1.5]))
        space = SharingActionSpace()
        with pytest.raises(ValueError):
            space.decode(np.array([9]))
        with pytest.raises(ValueError):
            space.encode(3, 0)


class TestEditActionSpace:
    def test_four_actions(self):
        assert EditActionSpace().n_actions == 4

    def test_decode(self):
        space = EditActionSpace()
        edit, vote = space.decode(np.arange(4))
        assert edit.tolist() == [False, False, True, True]
        assert vote.tolist() == [False, True, False, True]

    def test_constructive_destructive_actions(self):
        space = EditActionSpace()
        edit, vote = space.decode(np.array([space.constructive_action]))
        assert edit[0] and vote[0]
        edit, vote = space.decode(np.array([space.destructive_action]))
        assert not edit[0] and not vote[0]

    def test_encode_roundtrip(self):
        space = EditActionSpace()
        for e in (False, True):
            for v in (False, True):
                a = space.encode(e, v)
                edit, vote = space.decode(np.array([a]))
                assert bool(edit[0]) == e and bool(vote[0]) == v

    def test_decode_range_checked(self):
        with pytest.raises(ValueError):
            EditActionSpace().decode(np.array([4]))
