"""Tests for the behaviour engine composing the three peer types."""

import numpy as np
import pytest

from repro.agents.actions import EditActionSpace, SharingActionSpace
from repro.agents.behaviors import BehaviorEngine
from repro.agents.qlearning import VectorQLearner
from repro.network.peer import ALTRUISTIC, IRRATIONAL, RATIONAL


def make_engine(types):
    types = np.asarray(types, dtype=np.int8)
    n_rational = int((types == RATIONAL).sum())
    sharing = SharingActionSpace()
    edit = EditActionSpace()
    ql_s = VectorQLearner(max(n_rational, 1), 10, sharing.n_actions)
    ql_e = VectorQLearner(max(n_rational, 1), 10, edit.n_actions)
    if n_rational == 0:
        ql_s = VectorQLearner(1, 10, sharing.n_actions)
        ql_e = VectorQLearner(1, 10, edit.n_actions)
        # BehaviorEngine requires exact sizing; emulate with 0 learners.
    return BehaviorEngine(
        types,
        sharing,
        edit,
        VectorQLearner(n_rational, 10, sharing.n_actions) if n_rational else ql_s,
        VectorQLearner(n_rational, 10, edit.n_actions) if n_rational else ql_e,
    )


class TestBehaviorEngine:
    def test_fixed_types_constant_actions(self, rng):
        types = [ALTRUISTIC, IRRATIONAL, ALTRUISTIC]
        with pytest.raises(ValueError):
            # No rational peers but learner sized 1 -> mismatch is caught.
            make_engine(types)

    def test_mixed_population_actions(self, rng):
        types = np.array([RATIONAL, ALTRUISTIC, IRRATIONAL, RATIONAL], dtype=np.int8)
        sharing = SharingActionSpace()
        edit = EditActionSpace()
        engine = BehaviorEngine(
            types,
            sharing,
            edit,
            VectorQLearner(2, 10, sharing.n_actions),
            VectorQLearner(2, 10, edit.n_actions),
        )
        states = np.zeros(2, dtype=np.int64)
        actions = engine.sharing_actions(states, temperature=1.0, rng=rng)
        assert actions[1] == sharing.max_action  # altruist
        assert actions[2] == sharing.min_action  # irrational
        assert 0 <= actions[0] < sharing.n_actions

        edit_actions = engine.edit_actions(states, temperature=1.0, rng=rng)
        assert edit_actions[1] == edit.constructive_action
        assert edit_actions[2] == edit.destructive_action

    def test_learning_only_touches_rational(self, rng):
        types = np.array([RATIONAL, ALTRUISTIC], dtype=np.int8)
        sharing = SharingActionSpace()
        edit = EditActionSpace()
        ql_s = VectorQLearner(1, 10, sharing.n_actions)
        engine = BehaviorEngine(
            types, sharing, edit, ql_s, VectorQLearner(1, 10, edit.n_actions)
        )
        states = np.zeros(1, dtype=np.int64)
        actions = np.array([2, sharing.max_action])
        rewards = np.array([5.0, 99.0])
        engine.learn_sharing(states, actions, rewards, states)
        # Rational agent's Q updated with its own reward.
        assert ql_s.q[0, 0, 2] > 0
        # The altruist's "reward" was never consumed anywhere else.
        assert ql_s.q[0, 0, sharing.max_action] == 0.0

    def test_learner_size_validated(self):
        types = np.array([RATIONAL, RATIONAL], dtype=np.int8)
        sharing = SharingActionSpace()
        edit = EditActionSpace()
        with pytest.raises(ValueError):
            BehaviorEngine(
                types,
                sharing,
                edit,
                VectorQLearner(1, 10, sharing.n_actions),
                VectorQLearner(2, 10, edit.n_actions),
            )
