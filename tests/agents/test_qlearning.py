"""Tests for vectorized Q-learning and Boltzmann exploration (Figure 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.qlearning import (
    VectorQLearner,
    boltzmann_probabilities,
    sample_categorical,
)


class TestBoltzmannProbabilities:
    def test_paper_figure2_t2_concentrates(self):
        """At T=2 the mass concentrates on the highest values."""
        q = np.arange(1, 11, dtype=np.float64)[None, :]
        p = boltzmann_probabilities(q, 2.0)[0]
        assert p[-1] > 0.35
        assert np.all(np.diff(p) > 0)

    def test_paper_figure2_t1000_near_uniform(self):
        q = np.arange(1, 11, dtype=np.float64)[None, :]
        p = boltzmann_probabilities(q, 1000.0)[0]
        assert np.all(np.abs(p - 0.1) < 0.002)

    def test_infinite_temperature_exactly_uniform(self):
        """The paper's training regime: T = max float -> uniform."""
        q = np.array([[0.0, 100.0, -50.0]])
        p = boltzmann_probabilities(q, np.inf)
        assert np.allclose(p, 1 / 3)

    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(20, 7))
        p = boltzmann_probabilities(q, 1.0)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_numerically_stable_for_large_q(self):
        q = np.array([[1e6, 1e6 - 1.0]])
        p = boltzmann_probabilities(q, 1.0)
        assert np.all(np.isfinite(p))
        assert p[0, 0] > p[0, 1]

    def test_low_temperature_approaches_greedy(self):
        q = np.array([[1.0, 2.0, 3.0]])
        p = boltzmann_probabilities(q, 0.01)
        assert p[0, 2] > 0.999

    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            boltzmann_probabilities(np.array([[1.0, 2.0]]), 0.0)
        with pytest.raises(ValueError):
            boltzmann_probabilities(np.array([[1.0, 2.0]]), -1.0)

    def test_three_dimensional_input(self):
        q = np.zeros((4, 5, 3))
        p = boltzmann_probabilities(q, 1.0)
        assert p.shape == (4, 5, 3)
        assert np.allclose(p.sum(axis=-1), 1.0)

    @given(st.floats(min_value=0.01, max_value=1e6), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_property_valid_distribution(self, t, seed):
        rng = np.random.default_rng(seed)
        q = rng.normal(scale=5.0, size=(3, 6))
        p = boltzmann_probabilities(q, t)
        assert np.all(p >= 0)
        assert np.allclose(p.sum(axis=1), 1.0)

    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_order_preserved(self, seed):
        """Higher Q-value never gets lower probability."""
        rng = np.random.default_rng(seed)
        q = rng.normal(size=(1, 5))
        p = boltzmann_probabilities(q, 1.0)[0]
        order_q = np.argsort(q[0])
        assert np.all(np.diff(p[order_q]) >= -1e-12)


class TestSampleCategorical:
    def test_respects_distribution(self, rng):
        p = np.tile(np.array([0.8, 0.1, 0.1]), (5000, 1))
        samples = sample_categorical(p, rng)
        counts = np.bincount(samples, minlength=3) / 5000
        assert counts[0] == pytest.approx(0.8, abs=0.03)

    def test_degenerate_distribution(self, rng):
        p = np.tile(np.array([0.0, 1.0, 0.0]), (100, 1))
        samples = sample_categorical(p, rng)
        assert np.all(samples == 1)

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(np.array([0.5, 0.5]), rng)

    def test_samples_in_range(self, rng):
        p = np.full((1000, 4), 0.25)
        samples = sample_categorical(p, rng)
        assert samples.min() >= 0 and samples.max() <= 3


class TestVectorQLearner:
    def test_update_formula(self):
        ql = VectorQLearner(1, 2, 2, learning_rate=0.5, discount=0.9)
        ql.q[0, 1, 1] = 10.0  # best next value
        ql.update(
            states=np.array([0]),
            actions=np.array([0]),
            rewards=np.array([2.0]),
            next_states=np.array([1]),
        )
        # Q <- (1-0.5)*0 + 0.5*(2 + 0.9*10) = 5.5
        assert ql.q[0, 0, 0] == pytest.approx(5.5)

    def test_agents_independent(self):
        ql = VectorQLearner(3, 2, 2)
        ql.update(
            states=np.array([0, 0, 0]),
            actions=np.array([0, 1, 0]),
            rewards=np.array([1.0, 2.0, 0.0]),
            next_states=np.array([0, 0, 0]),
        )
        assert ql.q[0, 0, 0] > 0
        assert ql.q[1, 0, 0] == 0.0
        assert ql.q[1, 0, 1] > 0

    def test_convergence_to_reward(self):
        """Repeated updates converge Q to r / (1 - gamma) for a constant
        reward and a single state."""
        ql = VectorQLearner(1, 1, 2, learning_rate=0.2, discount=0.5)
        for _ in range(1000):
            ql.update(
                states=np.array([0]),
                actions=np.array([0]),
                rewards=np.array([1.0]),
                next_states=np.array([0]),
            )
        assert ql.q[0, 0, 0] == pytest.approx(2.0, rel=1e-3)

    def test_select_actions_greedy_limit(self, rng):
        ql = VectorQLearner(2, 1, 3)
        ql.q[:, 0, 2] = 100.0
        actions = ql.select_actions(np.array([0, 0]), temperature=0.01, rng=rng)
        assert actions.tolist() == [2, 2]

    def test_select_actions_infinite_t_uniform(self, rng):
        ql = VectorQLearner(2000, 1, 4)
        ql.q[:, 0, 0] = 1e9  # must be ignored at T = inf
        actions = ql.select_actions(
            np.zeros(2000, dtype=np.int64), temperature=np.inf, rng=rng
        )
        counts = np.bincount(actions, minlength=4) / 2000
        assert np.all(np.abs(counts - 0.25) < 0.06)

    def test_subset_selection(self, rng):
        ql = VectorQLearner(5, 2, 3)
        subset = np.array([1, 3])
        actions = ql.select_actions(
            np.array([0, 1]), temperature=1.0, rng=rng, subset=subset
        )
        assert actions.shape == (2,)

    def test_greedy_actions(self):
        ql = VectorQLearner(2, 2, 3)
        ql.q[0, 0, 1] = 5.0
        ql.q[1, 0, 2] = 5.0
        greedy = ql.greedy_actions(np.array([0, 0]))
        assert greedy.tolist() == [1, 2]

    def test_misaligned_update_rejected(self):
        ql = VectorQLearner(2, 2, 2)
        with pytest.raises(ValueError):
            ql.update(
                states=np.array([0]),
                actions=np.array([0, 1]),
                rewards=np.array([1.0, 1.0]),
                next_states=np.array([0, 0]),
            )

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            VectorQLearner(0, 1, 2)
        with pytest.raises(ValueError):
            VectorQLearner(1, 1, 1)
        with pytest.raises(ValueError):
            VectorQLearner(1, 1, 2, learning_rate=0.0)
        with pytest.raises(ValueError):
            VectorQLearner(1, 1, 2, discount=1.0)

    def test_reset_and_copy(self):
        ql = VectorQLearner(2, 2, 2)
        ql.q[:] = 7.0
        clone = ql.copy()
        ql.reset()
        assert np.all(ql.q == 0.0)
        assert np.all(clone.q == 7.0)

    def test_learning_beats_random_on_bandit(self, rng):
        """End-to-end sanity: Q-learning finds the best arm of a bandit."""
        ql = VectorQLearner(10, 1, 3, learning_rate=0.1, discount=0.0)
        true_rewards = np.array([0.1, 0.9, 0.4])
        states = np.zeros(10, dtype=np.int64)
        for _ in range(400):
            actions = ql.select_actions(states, temperature=0.3, rng=rng)
            rewards = true_rewards[actions] + rng.normal(0, 0.05, size=10)
            ql.update(states, actions, rewards, states)
        greedy = ql.greedy_actions(states)
        assert np.all(greedy == 1)
