"""Tests for time-series helpers."""

import numpy as np
import pytest

from repro.analysis.series import converged, downsample, moving_average, tail_mean


class TestMovingAverage:
    def test_constant_series(self):
        x = np.full(10, 3.0)
        assert moving_average(x, 4) == pytest.approx(x)

    def test_window_one_is_identity(self):
        x = np.array([1.0, 5.0, 2.0])
        assert moving_average(x, 1) == pytest.approx(x)

    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.random(50)
        w = 7
        ours = moving_average(x, w)
        for i in range(50):
            lo = max(0, i - w + 1)
            assert ours[i] == pytest.approx(x[lo : i + 1].mean())

    def test_empty(self):
        assert moving_average(np.array([]), 3).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average(np.array([1.0]), 0)


class TestTailMean:
    def test_full_fraction(self):
        assert tail_mean(np.array([1.0, 2.0, 3.0]), 1.0) == pytest.approx(2.0)

    def test_half(self):
        assert tail_mean(np.array([0.0, 0.0, 4.0, 6.0]), 0.5) == pytest.approx(5.0)

    def test_empty(self):
        assert np.isnan(tail_mean(np.array([])))

    def test_validation(self):
        with pytest.raises(ValueError):
            tail_mean(np.array([1.0]), 0.0)


class TestDownsample:
    def test_short_series_unchanged(self):
        x = np.array([1.0, 2.0])
        xs, ys = downsample(x, 10)
        assert ys == pytest.approx(x)

    def test_bucket_means(self):
        x = np.arange(100, dtype=float)
        xs, ys = downsample(x, 10)
        assert ys.size == 10
        assert ys[0] == pytest.approx(np.arange(10).mean())

    def test_total_mean_preserved_for_even_buckets(self):
        x = np.arange(100, dtype=float)
        _, ys = downsample(x, 10)
        assert ys.mean() == pytest.approx(x.mean())

    def test_validation(self):
        with pytest.raises(ValueError):
            downsample(np.array([1.0]), 0)


class TestConverged:
    def test_flat_series_converged(self):
        assert converged(np.full(1000, 2.0), window=100)

    def test_trending_series_not_converged(self):
        assert not converged(np.linspace(0, 10, 1000), window=100, tolerance=0.01)

    def test_too_short_not_converged(self):
        assert not converged(np.ones(50), window=100)

    def test_near_zero_scale(self):
        assert converged(np.full(400, 1e-12), window=100)
