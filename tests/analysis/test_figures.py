"""Tests for the FigureData container."""

import numpy as np
import pytest

from repro.analysis.figures import FigureData


def make_fig(kind="line"):
    return FigureData(
        name="figX",
        title="demo",
        x_label="x",
        y_label="y",
        x=np.array([1.0, 2.0, 3.0]),
        series={"a": np.array([0.1, 0.2, 0.3])},
        errors={"a": np.array([0.01, 0.01, 0.02])},
        meta={"n_seeds": 3},
        kind=kind,
    )


class TestFigureData:
    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            FigureData(
                name="f",
                title="t",
                x_label="x",
                y_label="y",
                x=np.array([1.0]),
                series={"a": np.array([1.0, 2.0])},
            )

    def test_errors_must_match_series(self):
        with pytest.raises(ValueError):
            FigureData(
                name="f",
                title="t",
                x_label="x",
                y_label="y",
                x=np.array([1.0]),
                series={"a": np.array([1.0])},
                errors={"b": np.array([1.0])},
            )

    def test_render_line(self):
        out = make_fig().render()
        assert "figX" in out and "demo" in out

    def test_render_bar(self):
        out = make_fig(kind="bar").render()
        assert "#" in out

    def test_csv_roundtrip(self, tmp_path):
        fig = make_fig()
        path = fig.to_csv(tmp_path / "f.csv")
        content = path.read_text().splitlines()
        assert content[0] == "x,a,err_a"
        assert len(content) == 4

    def test_json_roundtrip(self, tmp_path):
        fig = make_fig()
        path = fig.to_json(tmp_path / "f.json")
        clone = FigureData.from_json(path)
        assert clone.name == fig.name
        assert clone.series["a"] == pytest.approx(fig.series["a"])
        assert clone.errors["a"] == pytest.approx(fig.errors["a"])
        assert clone.meta["n_seeds"] == 3

    def test_creates_directories(self, tmp_path):
        fig = make_fig()
        path = fig.to_csv(tmp_path / "deep" / "dir" / "f.csv")
        assert path.exists()
