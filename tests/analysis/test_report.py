"""Tests for the reproduction-report generator."""

import numpy as np

from repro.analysis.figures import FigureData
from repro.analysis.report import (
    load_results,
    render_markdown_table,
    reproduction_table,
)


def write_fig3(tmp_path, gain_articles=0.065, gain_bandwidth=0.068):
    FigureData(
        name="fig3",
        title="t",
        x_label="resource",
        y_label="y",
        x=np.array([0.0, 1.0]),
        series={"incentive": np.array([0.48, 0.50]), "no_incentive": np.array([0.45, 0.46])},
        meta={"gain_articles": gain_articles, "gain_bandwidth": gain_bandwidth},
        kind="bar",
    ).to_json(tmp_path / "fig3.json")


class TestLoadResults:
    def test_loads_by_name(self, tmp_path):
        write_fig3(tmp_path)
        figs = load_results(tmp_path)
        assert "fig3" in figs

    def test_empty_dir(self, tmp_path):
        assert load_results(tmp_path) == {}


class TestReproductionTable:
    def test_fig3_row_positive(self, tmp_path):
        write_fig3(tmp_path)
        rows = reproduction_table(load_results(tmp_path))
        assert len(rows) == 1
        assert rows[0]["figure"] == "Fig. 3"
        assert rows[0]["holds"] == "yes"
        assert "+6.5%" in rows[0]["measured"]

    def test_fig3_row_negative(self, tmp_path):
        write_fig3(tmp_path, gain_articles=-0.02)
        rows = reproduction_table(load_results(tmp_path))
        assert rows[0]["holds"] == "NO"

    def test_fig4_row(self, tmp_path):
        FigureData(
            name="fig4_files",
            title="t",
            x_label="pct",
            y_label="y",
            x=np.array([10.0, 50.0, 90.0]),
            series={
                "altruistic": np.array([0.3, 0.6, 0.9]),
                "irrational": np.array([0.7, 0.4, 0.1]),
            },
        ).to_json(tmp_path / "fig4_files.json")
        rows = reproduction_table(load_results(tmp_path))
        assert rows[0]["figure"] == "Fig. 4"
        assert rows[0]["holds"] == "yes"

    def test_fig7_rows(self, tmp_path):
        for vary, final in (("altruistic", 0.9), ("irrational", 0.1)):
            FigureData(
                name=f"fig7_{vary}",
                title="t",
                x_label="pct",
                y_label="y",
                x=np.array([10.0, 90.0]),
                series={
                    "constructive": np.array([0.5, final]),
                    "destructive": np.array([0.5, 1 - final]),
                },
                kind="bar",
            ).to_json(tmp_path / f"fig7_{vary}.json")
        rows = reproduction_table(load_results(tmp_path))
        assert rows[0]["figure"] == "Fig. 7"
        assert rows[0]["holds"] == "yes"


class TestRenderMarkdown:
    def test_renders_rows(self, tmp_path):
        write_fig3(tmp_path)
        md = render_markdown_table(reproduction_table(load_results(tmp_path)))
        assert md.startswith("| Figure |")
        assert "Fig. 3" in md
