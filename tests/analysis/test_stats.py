"""Tests for summary statistics."""

import numpy as np
import pytest

from repro.analysis.stats import MeanCI, bootstrap_ci, mean_ci, relative_change


class TestMeanCI:
    def test_basic(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3
        assert ci.low < 2.0 < ci.high

    def test_single_value(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0

    def test_empty(self):
        ci = mean_ci([])
        assert np.isnan(ci.mean)
        assert ci.n == 0

    def test_nans_dropped(self):
        ci = mean_ci([1.0, float("nan"), 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 2

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = mean_ci(rng.normal(size=10))
        large = mean_ci(rng.normal(size=1000))
        assert large.half_width < small.half_width

    def test_interval_bounds(self):
        ci = MeanCI(mean=1.0, half_width=0.2, n=5)
        assert ci.low == pytest.approx(0.8)
        assert ci.high == pytest.approx(1.2)


class TestBootstrapCI:
    def test_contains_true_mean(self, rng):
        data = rng.normal(loc=3.0, size=200)
        lo, hi = bootstrap_ci(data, rng)
        assert lo < 3.0 < hi

    def test_deterministic_given_rng(self, rng_factory):
        data = np.arange(20, dtype=float)
        a = bootstrap_ci(data, rng_factory(1))
        b = bootstrap_ci(data, rng_factory(1))
        assert a == b

    def test_empty(self, rng):
        lo, hi = bootstrap_ci([], rng)
        assert np.isnan(lo) and np.isnan(hi)

    def test_confidence_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], rng, confidence=1.5)

    def test_wider_confidence_wider_interval(self, rng_factory):
        data = rng_factory(0).normal(size=100)
        lo1, hi1 = bootstrap_ci(data, rng_factory(1), confidence=0.5)
        lo2, hi2 = bootstrap_ci(data, rng_factory(1), confidence=0.99)
        assert (hi2 - lo2) > (hi1 - lo1)


class TestWelchTTest:
    def test_detects_separation(self):
        from repro.analysis.stats import welch_t_test

        t, p = welch_t_test([1.0, 1.1, 0.9, 1.05], [2.0, 2.1, 1.9, 2.05])
        assert p < 0.01
        assert t < 0  # first sample smaller

    def test_identical_samples_insignificant(self):
        from repro.analysis.stats import welch_t_test

        rng = np.random.default_rng(0)
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        _, p = welch_t_test(x, y)
        assert p > 0.05

    def test_too_small_returns_nan(self):
        from repro.analysis.stats import welch_t_test

        t, p = welch_t_test([1.0], [2.0, 3.0])
        assert np.isnan(t) and np.isnan(p)

    def test_nans_dropped(self):
        from repro.analysis.stats import welch_t_test

        t, p = welch_t_test([1.0, np.nan, 1.1, 0.9], [2.0, 2.1, np.nan, 1.9])
        assert np.isfinite(t)


class TestRelativeChange:
    def test_increase(self):
        assert relative_change(1.0, 1.1) == pytest.approx(0.1)

    def test_decrease(self):
        assert relative_change(2.0, 1.0) == pytest.approx(-0.5)

    def test_zero_baseline(self):
        assert np.isnan(relative_change(0.0, 1.0))
