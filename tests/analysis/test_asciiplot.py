"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis.asciiplot import bar_chart, grouped_bars, line_plot


class TestLinePlot:
    def test_renders_all_series(self):
        x = np.linspace(0, 10, 20)
        out = line_plot(x, {"a": x, "b": 10 - x}, title="demo")
        assert "demo" in out
        assert "o=a" in out and "x=b" in out

    def test_handles_nan(self):
        x = np.arange(5, dtype=float)
        y = x.copy()
        y[2] = np.nan
        out = line_plot(x, {"s": y})
        assert "s" in out

    def test_constant_series(self):
        x = np.arange(4, dtype=float)
        out = line_plot(x, {"c": np.full(4, 2.0)})
        assert "|" in out

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            line_plot(np.arange(3), {"s": np.arange(4)})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_plot(np.arange(3), {})

    def test_explicit_y_range(self):
        x = np.arange(3, dtype=float)
        out = line_plot(x, {"s": x}, y_range=(0.0, 10.0))
        assert "10.0000" in out


class TestBarChart:
    def test_bars_scale(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_nan_rendered(self):
        out = bar_chart(["a"], [float("nan")])
        assert "(nan)" in out

    def test_all_zero(self):
        out = bar_chart(["a"], [0.0])
        assert "0.0000" in out

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])


class TestGroupedBars:
    def test_groups_and_series(self):
        out = grouped_bars(
            ["g1", "g2"], {"x": [1.0, 2.0], "y": [2.0, 1.0]}, width=8
        )
        assert "g1:" in out and "g2:" in out
        assert out.count("|") == 4

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            grouped_bars(["g1"], {"x": [1.0, 2.0]})
