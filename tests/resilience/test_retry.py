"""RetryPolicy: bounded attempts, deterministic backoff, typed matching."""

import pytest

from repro.resilience import (
    DEFAULT_COMPUTE_RETRY,
    DEFAULT_STORE_RETRY,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    fault_point,
    inject_faults,
)


class TestBackoffSchedule:
    def test_deterministic_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1, multiplier=2.0)
        assert list(policy.delays()) == [0.1, 0.2, 0.4]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=1.0, multiplier=10.0, max_delay_s=3.0
        )
        assert list(policy.delays()) == [1.0, 3.0, 3.0, 3.0]

    def test_single_attempt_has_no_delays(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCall:
    def _flaky(self, fail_times, exc=OSError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise exc(f"attempt {calls['n']}")
            return calls["n"]

        return fn, calls

    def test_recovers_within_budget(self):
        fn, calls = self._flaky(2)
        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.5)
        assert policy.call(fn, sleep=slept.append) == 3
        assert calls["n"] == 3
        assert slept == [0.5, 1.0]

    def test_budget_exhausted_reraises_last_unwrapped(self):
        fn, _ = self._flaky(99)
        with pytest.raises(OSError, match="attempt 2"):
            RetryPolicy(max_attempts=2, base_delay_s=0).call(fn)

    def test_non_matching_exception_propagates_immediately(self):
        fn, calls = self._flaky(99, exc=KeyError)
        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=5, base_delay_s=0).call(fn)
        assert calls["n"] == 1

    def test_on_retry_sees_one_based_attempts(self):
        fn, _ = self._flaky(2)
        seen = []
        RetryPolicy(max_attempts=3, base_delay_s=0).call(
            fn, on_retry=lambda attempt, exc: seen.append(attempt)
        )
        assert seen == [1, 2]

    def test_zero_delay_never_sleeps(self):
        fn, _ = self._flaky(1)
        slept = []
        RetryPolicy(max_attempts=2, base_delay_s=0).call(fn, sleep=slept.append)
        assert slept == []


class TestDefaults:
    def test_store_retry_covers_oserror_only(self):
        assert DEFAULT_STORE_RETRY.retry_on == (OSError,)
        assert DEFAULT_STORE_RETRY.max_attempts == 3

    def test_compute_retry_is_two_attempts_any_exception(self):
        assert DEFAULT_COMPUTE_RETRY.max_attempts == 2
        assert Exception in DEFAULT_COMPUTE_RETRY.retry_on

    def test_store_retry_absorbs_a_single_injected_fault(self):
        # The integration the whole design hinges on: InjectedFault is an
        # OSError, so a once-firing fault is invisible to callers of a
        # retried operation.
        plan = FaultPlan([FaultSpec(site="op", action="error", at=(1,))])

        def op():
            fault_point("op")
            return "ok"

        with inject_faults(plan):
            assert DEFAULT_STORE_RETRY.call(op, sleep=lambda s: None) == "ok"
        assert len(plan.fired) == 1

    def test_store_retry_exhausted_by_persistent_fault(self):
        plan = FaultPlan([FaultSpec(site="op", action="error")])

        def op():
            fault_point("op")

        with inject_faults(plan):
            with pytest.raises(InjectedFault):
                DEFAULT_STORE_RETRY.call(op, sleep=lambda s: None)
        assert len(plan.fired) == DEFAULT_STORE_RETRY.max_attempts
