"""Resume snapshots: encoding, atomic persistence, bit-identical resume.

The headline guarantee lives here: a task that dies mid-run — whether
via an in-process injected error or a real SIGKILL-style process death —
resumes from its latest snapshot and produces **bit-identical** results
to an uninterrupted run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.resilience import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResumableTask,
    SnapshotStore,
    clear_plan,
    decode_snapshot,
    encode_snapshot,
    inject_faults,
    snapshot_key,
)
from repro.sim.config import SimulationConfig
from repro.sim._sweep import run_sweep
from repro.store.hashing import config_hash
from tests.conftest import assert_summaries_equal

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=12, n_articles=3, training_steps=30, eval_steps=20,
        seed=seed, **kw,
    )


class TestSnapshotKey:
    def test_matches_dispatch_task_key(self):
        from repro.store.dispatch import task_key

        hashes = [config_hash(tiny(s)) for s in (1, 2, 3)]
        assert snapshot_key(hashes) == task_key(hashes)

    def test_order_insensitive(self):
        assert snapshot_key(["b", "a"]) == snapshot_key(["a", "b"])


class TestEncodeDecode:
    def test_roundtrip(self):
        blob = encode_snapshot({"toy": 1}, 17, ["h1"])
        assert decode_snapshot(blob, ["h1"]) == ({"toy": 1}, 17)

    def test_anomalies_decode_to_none(self):
        blob = encode_snapshot({}, 5, ["h1"])
        assert decode_snapshot(b"garbage", ["h1"]) is None
        assert decode_snapshot(blob[: len(blob) // 2], ["h1"]) is None
        assert decode_snapshot(blob, ["other"]) is None
        # Order matters: lane order assigns RNG streams.
        two = encode_snapshot({}, 5, ["h1", "h2"])
        assert decode_snapshot(two, ["h2", "h1"]) is None


class TestSnapshotStore:
    def test_save_load_delete(self, tmp_path):
        snaps = SnapshotStore(tmp_path)
        snaps.save("k", b"blob")
        assert snaps.load("k") == b"blob"
        assert snaps.keys() == ["k"]
        snaps.delete("k")
        assert snaps.load("k") is None
        snaps.delete("k")  # idempotent

    def test_torn_write_preserves_previous_snapshot(self, tmp_path):
        snaps = SnapshotStore(tmp_path)
        snaps.save("k", b"good snapshot")
        plan = FaultPlan(
            [FaultSpec(site="snapshot/save", action="torn-write", at=(1,))]
        )
        with inject_faults(plan):
            with pytest.raises(InjectedFault):
                snaps.save("k", b"replacement that dies mid-write")
        # The atomic-rename discipline: the old bytes are untouched and
        # no temp litter remains.
        assert snaps.load("k") == b"good snapshot"
        assert list(Path(snaps.dir).glob("*.tmp")) == []


class TestBitIdenticalResume:
    def test_injected_death_then_resume_matches_straight_run(self, tmp_path):
        configs = [tiny(seed=5)]
        straight = ResumableTask(configs).run()

        # Die at step 25 — after the checkpoint at step 20 landed.
        plan = FaultPlan([FaultSpec(site="sweep/step", action="error", at=(26,))])
        with inject_faults(plan):
            with pytest.raises(InjectedFault):
                ResumableTask(
                    configs, checkpoint_every=10, store_root=str(tmp_path)
                ).run()
        snaps = SnapshotStore(tmp_path)
        assert snaps.keys() == [snapshot_key([config_hash(configs[0])])]

        resumed_task = ResumableTask(
            configs, checkpoint_every=10, store_root=str(tmp_path)
        )
        resumed = resumed_task.run()
        assert resumed_task.resumed
        assert resumed_task.resumed_at_step == 20
        assert_summaries_equal(resumed[0].summary, straight[0].summary)
        assert snaps.keys() == []  # snapshot deleted once results landed

    def test_resume_across_phase_boundary(self, tmp_path):
        # A snapshot at steps_done == training_steps must capture the
        # post-reset state: resuming from it never replays the boundary.
        configs = [tiny(seed=9)]  # training_steps=30: checkpoint lands at 30
        straight = ResumableTask(configs).run()
        plan = FaultPlan([FaultSpec(site="sweep/step", action="error", at=(32,))])
        with inject_faults(plan):
            with pytest.raises(InjectedFault):
                ResumableTask(
                    configs, checkpoint_every=30, store_root=str(tmp_path)
                ).run()
        task = ResumableTask(configs, checkpoint_every=30, store_root=str(tmp_path))
        resumed = task.run()
        assert task.resumed_at_step == 30
        assert_summaries_equal(resumed[0].summary, straight[0].summary)

    def test_batched_task_resumes_every_lane(self, tmp_path):
        configs = [tiny(seed=1), tiny(seed=2)]
        straight = ResumableTask(configs).run()
        plan = FaultPlan([FaultSpec(site="sweep/step", action="error", at=(45,))])
        with inject_faults(plan):
            with pytest.raises(InjectedFault):
                ResumableTask(
                    configs, checkpoint_every=10, store_root=str(tmp_path)
                ).run()
        task = ResumableTask(configs, checkpoint_every=10, store_root=str(tmp_path))
        resumed = task.run()
        assert task.resumed
        for a, b in zip(resumed, straight):
            assert_summaries_equal(a.summary, b.summary)

    def test_corrupt_snapshot_restarts_from_zero(self, tmp_path):
        configs = [tiny(seed=3)]
        key = snapshot_key([config_hash(configs[0])])
        snaps = SnapshotStore(tmp_path)
        snaps.save(key, b"RSNPnot really a snapshot")
        task = ResumableTask(configs, checkpoint_every=10, store_root=str(tmp_path))
        results = task.run()
        assert not task.resumed
        straight = ResumableTask(configs).run()
        assert_summaries_equal(results[0].summary, straight[0].summary)


class TestCrashResume:
    """A real process death (os._exit inside the step loop), not a
    raised exception: nothing gets to clean up, exactly like SIGKILL."""

    def _crash_worker(self, store_root, seed, crash_at):
        plan = {
            "schema_version": 1,
            "seed": 0,
            "faults": [
                {"site": "sweep/step", "action": "crash", "at": [crash_at]}
            ],
        }
        script = (
            "from repro.resilience import ResumableTask\n"
            "from repro.sim.config import SimulationConfig\n"
            f"cfg = SimulationConfig(n_agents=12, n_articles=3, "
            f"training_steps=30, eval_steps=20, seed={seed})\n"
            f"ResumableTask([cfg], checkpoint_every=10, "
            f"store_root={store_root!r}).run()\n"
        )
        env = dict(os.environ)
        env[FAULT_PLAN_ENV] = json.dumps(plan)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            timeout=120,
        )

    def test_sigkilled_worker_resumes_bit_identically(self, tmp_path):
        cfg = tiny(seed=21)
        proc = self._crash_worker(str(tmp_path), 21, crash_at=26)
        assert proc.returncode == 137, proc.stderr.decode()

        key = snapshot_key([config_hash(cfg)])
        snaps = SnapshotStore(tmp_path)
        assert snaps.keys() == [key]  # the corpse left its checkpoint

        task = ResumableTask([cfg], checkpoint_every=10, store_root=str(tmp_path))
        resumed = task.run()
        assert task.resumed and task.resumed_at_step == 20

        straight = ResumableTask([cfg]).run()
        assert_summaries_equal(resumed[0].summary, straight[0].summary)

    def test_crash_resume_matches_run_sweep_output(self, tmp_path):
        # The resumed result equals what run_sweep computes for the same
        # config — so a resumed task's record can share the
        # content-addressed store with ordinary ones.
        cfg = tiny(seed=22)
        proc = self._crash_worker(str(tmp_path), 22, crash_at=15)
        assert proc.returncode == 137, proc.stderr.decode()
        task = ResumableTask([cfg], checkpoint_every=10, store_root=str(tmp_path))
        resumed = task.run()
        assert task.resumed and task.resumed_at_step == 10
        [swept] = run_sweep([cfg], backend="serial")
        assert_summaries_equal(resumed[0].summary, swept.summary)
