"""FaultPlan mechanics: matching, scheduling, serialization, activation."""

import json
import pickle

import pytest

from repro.resilience import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_plan,
    fault_point,
    inject_faults,
    install_plan,
    torn_bytes,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Every test starts and ends with no ambient plan."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    clear_plan()
    yield
    clear_plan()


class TestFaultSpec:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="x", action="explode")

    def test_at_must_be_positive(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(site="x", at=(0,))

    def test_roundtrip(self):
        spec = FaultSpec(site="lease/*", action="torn-write", at=(2, 5), fraction=0.3)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_accepts_bare_int_at(self):
        assert FaultSpec.from_dict({"site": "x", "at": 3}).at == (3,)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"site": "x", "when": "later"})


class TestPlanMatching:
    def test_at_selects_specific_hits(self):
        plan = FaultPlan([FaultSpec(site="s", at=(2,))])
        assert plan.check("s") is None
        assert plan.check("s") is not None  # hit 2
        assert plan.check("s") is None

    def test_site_is_fnmatch_pattern(self):
        plan = FaultPlan([FaultSpec(site="lease/*")])
        assert plan.check("lease/claim") is not None
        assert plan.check("store/put") is None

    def test_match_restricts_by_key_substring(self):
        plan = FaultPlan([FaultSpec(site="s", match="abc")])
        assert plan.check("s", key="zzz") is None
        assert plan.check("s", key="xxabcxx") is not None

    def test_max_fires_caps_firings(self):
        plan = FaultPlan([FaultSpec(site="s", max_fires=2)])
        fired = [plan.check("s") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_non_matching_hits_still_counted_per_spec(self):
        # 'at' counts hits against *that spec's* filter: key-mismatched
        # calls do count (the spec saw the site), so schedules stay
        # positional within the site's own hit sequence.
        plan = FaultPlan([FaultSpec(site="s", at=(3,))])
        plan.check("other")  # different site: not a hit
        plan.check("s")
        plan.check("s")
        assert plan.check("s") is not None  # third 's' hit

    def test_fired_log_records_site_key_action_hit(self):
        plan = FaultPlan([FaultSpec(site="s", action="delay", at=(1,))])
        with inject_faults(plan):
            fault_point("s", key="k1")
        assert plan.fired == [
            {"site": "s", "key": "k1", "action": "delay", "spec": 0, "hit": 1}
        ]

    def test_seeded_p_gate_is_deterministic(self):
        def schedule():
            plan = FaultPlan([FaultSpec(site="s", p=0.5)], seed=7)
            return [plan.check("s") is not None for _ in range(64)]

        first, second = schedule(), schedule()
        assert first == second
        assert any(first) and not all(first)  # the gate actually gates


class TestSerialization:
    def test_plan_roundtrip(self):
        plan = FaultPlan(
            [FaultSpec(site="a"), FaultSpec(site="b", action="crash", at=(9,))],
            seed=3,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 3
        assert clone.specs == plan.specs

    def test_parse_inline_json_and_path(self, tmp_path):
        doc = {"schema_version": 1, "seed": 0, "faults": [{"site": "x"}]}
        inline = FaultPlan.parse(json.dumps(doc))
        assert inline.specs[0].site == "x"
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert FaultPlan.parse(str(path)).specs == inline.specs

    def test_save_load_roundtrip(self, tmp_path):
        plan = FaultPlan([FaultSpec(site="s", at=(1,))], seed=11)
        path = tmp_path / "p.json"
        plan.save(path)
        loaded = FaultPlan.from_json(path)
        assert loaded.seed == 11 and loaded.specs == plan.specs

    def test_version_skew_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            FaultPlan.from_dict({"schema_version": 99, "faults": []})


class TestActivation:
    def test_no_plan_is_a_noop(self):
        assert fault_point("anything") is None

    def test_inject_faults_scopes_and_restores(self):
        outer = FaultPlan([FaultSpec(site="o")])
        install_plan(outer)
        inner = FaultPlan([FaultSpec(site="i", action="delay")])
        with inject_faults(inner):
            assert active_plan() is inner
        assert active_plan() is outer

    def test_env_var_inline_json(self, monkeypatch):
        doc = {"schema_version": 1, "faults": [{"site": "s", "action": "delay"}]}
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(doc))
        clear_plan()  # drop any cached env plan
        plan = active_plan()
        assert plan is not None and plan.specs[0].site == "s"
        # Counters persist across calls: the same cached plan is returned.
        assert active_plan() is plan

    def test_env_var_unloadable_raises(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "/nonexistent/plan.json")
        clear_plan()
        with pytest.raises(OSError):
            active_plan()


class TestFaultPointActions:
    def test_error_action_raises_injected_fault(self):
        with inject_faults(FaultPlan([FaultSpec(site="s", action="error")])):
            with pytest.raises(InjectedFault):
                fault_point("s")

    def test_injected_fault_is_oserror(self):
        # Retry policies and store error handling treat injected IO
        # failures exactly like real ones.
        assert issubclass(InjectedFault, OSError)

    def test_cooperative_actions_returned_to_call_site(self):
        spec = FaultSpec(site="s", action="torn-write", fraction=0.25)
        with inject_faults(FaultPlan([spec])):
            assert fault_point("s") is spec

    def test_torn_bytes_fraction(self):
        spec = FaultSpec(site="s", action="torn-write", fraction=0.5)
        assert torn_bytes(spec, b"abcdefgh") == b"abcd"

    def test_injected_fault_survives_pickle(self):
        exc = InjectedFault("sweep/compute", 2)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, InjectedFault)
        assert clone.site == "sweep/compute"
        assert clone.spec_index == 2
        assert str(clone) == str(exc)
