"""Retry/quarantine across sweep, dispatch and service layers.

The acceptance scenario from the resilience PR: a sweep containing one
always-failing config completes every other config, quarantines the
poisonous one exactly once (with a persisted ``errors/<hash>.json``
artifact) and reports the partial result honestly at every layer.
"""

import asyncio
import time
from types import SimpleNamespace

import pytest

from repro.resilience import (
    QUARANTINE_SCHEMA_VERSION,
    FaultPlan,
    FaultSpec,
    build_error_payload,
    clear_plan,
    inject_faults,
)
from repro.sim.config import SimulationConfig
from repro.sim._sweep import SweepFailure, last_sweep_failures, run_sweep
from repro.store.hashing import config_hash
from repro.store._runstore import RunStore


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=12, n_articles=3, training_steps=10, eval_steps=8,
        seed=seed, **kw,
    )


def poison_plan(cfg):
    """Every compute attempt of exactly this config fails."""
    return FaultPlan(
        [FaultSpec(site="sweep/compute", action="error", match=config_hash(cfg))]
    )


class TestErrorPayload:
    def test_schema(self):
        plan = FaultPlan([FaultSpec(site="s", action="delay")])
        plan.check("s")
        payload = build_error_payload(
            config_hash="abc",
            error=ValueError("boom"),
            traceback_text="tb",
            attempts=2,
            config={"seed": 1},
            plan=plan,
        )
        assert payload["schema_version"] == QUARANTINE_SCHEMA_VERSION
        assert payload["config_hash"] == "abc"
        assert payload["attempts"] == 2
        assert payload["error"] == repr(ValueError("boom"))
        assert payload["traceback"] == "tb"
        assert payload["config"] == {"seed": 1}
        assert payload["faults"] == plan.fired
        assert payload["created_at"] > 0


class TestRunStoreErrors:
    def test_put_get_clear(self, tmp_path):
        store = RunStore(tmp_path)
        payload = build_error_payload(config_hash="h1", error="boom")
        assert store.put_error(payload) == "h1"
        assert store.has_error("h1")
        assert store.error_hashes() == ["h1"]
        assert store.get_error("h1")["error"] == "boom"
        assert store.clear_error("h1")
        assert not store.has_error("h1")
        assert not store.clear_error("h1")


class TestSweepQuarantine:
    def test_requires_a_store(self):
        with pytest.raises(ValueError, match="store"):
            run_sweep([tiny()], on_error="quarantine")

    def test_unknown_on_error_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            run_sweep([tiny()], store=RunStore(tmp_path), on_error="ignore")

    def test_poison_config_quarantined_others_complete(self, tmp_path):
        store = RunStore(tmp_path)
        configs = [tiny(seed=s) for s in (1, 2, 3)]
        bad = configs[1]
        with inject_faults(poison_plan(bad)) as plan:
            results = run_sweep(
                configs, backend="serial", store=store, on_error="quarantine"
            )
        # The failed slot is None; the siblings' results are positional.
        assert results[1] is None
        assert results[0].config.seed == 1 and results[2].config.seed == 3
        # Exactly once per healthy config, exactly the retry budget for
        # the poisonous one (2 attempts by DEFAULT_COMPUTE_RETRY).
        assert store.contains_hash(config_hash(configs[0]))
        assert store.contains_hash(config_hash(configs[2]))
        assert len(plan.fired) == 2
        # The artifact carries the debugging trail.
        artifact = store.get_error(config_hash(bad))
        assert artifact["attempts"] == 2
        assert "InjectedFault" in artifact["error"]
        assert "fault_point" in artifact["traceback"]
        assert artifact["config"]["seed"] == 2
        assert artifact["faults"]  # the fired log was embedded

    def test_failures_enumerated(self, tmp_path):
        store = RunStore(tmp_path)
        configs = [tiny(seed=s) for s in (1, 2)]
        seen = []
        with inject_faults(poison_plan(configs[0])):
            run_sweep(
                configs,
                backend="serial",
                store=store,
                on_error="quarantine",
                on_failure=seen.append,
            )
        failures = last_sweep_failures()
        assert seen == failures
        [f] = failures
        assert isinstance(f, SweepFailure)
        assert f.index == 0
        assert f.config_hash == config_hash(configs[0])
        assert f.attempts == 2
        assert "InjectedFault" in f.error

    def test_healthy_rerun_clears_stale_artifact(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = tiny(seed=4)
        with inject_faults(poison_plan(cfg)):
            assert run_sweep(
                [cfg], backend="serial", store=store, on_error="quarantine"
            ) == [None]
        assert store.has_error(config_hash(cfg))
        # The fault is gone (plan deactivated): the re-run lands normally
        # and retires the quarantine artifact.
        [result] = run_sweep(
            [cfg], backend="serial", store=store, on_error="quarantine"
        )
        assert result is not None
        assert not store.has_error(config_hash(cfg))
        assert store.contains_hash(config_hash(cfg))

    def test_raise_mode_still_raises(self, tmp_path):
        from repro.sim._sweep import SweepWorkerError

        store = RunStore(tmp_path)
        cfg = tiny(seed=5)
        with inject_faults(poison_plan(cfg)):
            with pytest.raises((SweepWorkerError, OSError)):
                run_sweep([cfg, tiny(seed=6)], backend="serial", store=store)
        assert not store.has_error(config_hash(cfg))

    def test_thread_pool_batch_blast_radius_isolated(self, tmp_path):
        # A poisoned lane inside a multi-config batch costs only its own
        # slot: the batch is split and every sibling lane still lands.
        store = RunStore(tmp_path)
        configs = [tiny(seed=s) for s in (7, 17, 27, 37)]
        bad = configs[2]
        with inject_faults(poison_plan(bad)):
            results = run_sweep(
                configs,
                backend="thread",
                workers=2,
                lane_batch=True,
                store=store,
                on_error="quarantine",
            )
        assert results[2] is None
        for i in (0, 1, 3):
            assert results[i] is not None
            assert store.contains_hash(config_hash(configs[i]))
        assert store.has_error(config_hash(bad))

    def test_dispatch_store_quarantine_settles_grid(self, tmp_path):
        from repro.store.dispatch import last_dispatch_stats

        store = RunStore(tmp_path)
        configs = [tiny(seed=s) for s in (11, 12, 13)]
        bad = configs[0]
        with inject_faults(poison_plan(bad)):
            results = run_sweep(
                configs,
                backend="serial",
                store=store,
                dispatch="store",
                on_error="quarantine",
            )
        assert results[0] is None
        assert results[1] is not None and results[2] is not None
        stats = last_dispatch_stats()
        assert stats.quarantined == 1
        assert store.has_error(config_hash(bad))
        # No leases left behind: the grid is fully settled.
        assert list((store.root / "claims").glob("*.lease")) == []


class TestServicePartialJobs:
    """A quarantined unit degrades the job to 'partial', never 'failed'."""

    def _run(self, coro):
        return asyncio.run(coro)

    def test_job_goes_partial_with_config_failed_event(self):
        from repro.service.hub import EventHub
        from repro.service.jobs import JobManager
        from repro.service.schemas import SubmitSpec

        class FakeStore:
            def __init__(self):
                self.records = {}

            def refresh(self):
                return 0

            def contains_hash(self, h):
                return h in self.records

            def get_record(self, h):
                rec = self.records.get(h)
                return None if rec is None else SimpleNamespace(summary=rec)

        good, bad = tiny(seed=31), tiny(seed=32)
        bad_hash = config_hash(bad)

        def runner(configs, progress, on_failure):
            stats = SimpleNamespace(
                elapsed_s=0.01, eta_s=0.0, cached=0, computed=len(configs)
            )
            for i, cfg in enumerate(configs):
                h = config_hash(cfg)
                if h == bad_hash:
                    on_failure(
                        SweepFailure(
                            index=i,
                            config=cfg,
                            config_hash=h,
                            attempts=2,
                            error="InjectedFault('sweep/compute')",
                            traceback_text="",
                        )
                    )
                    continue
                store.records[h] = {"shared_files": 1.0}
                result = SimpleNamespace(
                    summary={"shared_files": 1.0}, wall_time_s=0.001
                )
                progress(i + 1, len(configs), i, result, False, stats)

        async def body():
            mgr = JobManager(store, hub=hub, runner=runner, workers=1)
            await mgr.start()
            try:
                job = mgr.submit(SubmitSpec(configs=(good, bad), label="t"))
                deadline = time.monotonic() + 10
                while not job.finished:
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.01)
                assert job.state == "partial"
                assert job.n_failed == 1
                slot = job.slots[bad_hash]
                assert slot["status"] == "failed"
                assert slot["source"] == "quarantine"
                assert slot["attempts"] == 2
                assert "InjectedFault" in slot["error"]
                view = job.view()
                assert view["state"] == "partial" and view["failed"] == 1
                history, _, queue = hub.subscribe(job.id)
                kinds = [ev.event for ev in history]
                assert "config_failed" in kinds
                assert kinds[-1] == "completed"
                hub.unsubscribe(job.id, queue)
            finally:
                await mgr.close(timeout_s=2)

        store = FakeStore()
        hub = EventHub()
        self._run(body())
