"""Tests for the round-robin tournament."""

import numpy as np
import pytest

from repro.gametheory.payoffs import prisoners_dilemma
from repro.gametheory.strategies import (
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    TitForTat,
    TitForTwoTats,
)
from repro.gametheory.tournament import round_robin

PD = prisoners_dilemma()


def axelrod_field():
    return [
        TitForTat(),
        AlwaysCooperate(),
        AlwaysDefect(),
        GrimTrigger(),
        Pavlov(),
        TitForTwoTats(),
    ]


class TestRoundRobin:
    def test_result_shapes(self):
        res = round_robin(axelrod_field(), PD, rounds=50)
        k = 6
        assert res.mean_payoff.shape == (k, k)
        assert res.cooperation.shape == (k, k)
        assert len(res.names) == k

    def test_tft_beats_alld_against_cooperative_field(self):
        """Axelrod's classic: reciprocators outperform pure defectors."""
        res = round_robin(axelrod_field(), PD, rounds=200)
        assert res.score_of("tit_for_tat") > res.score_of("always_defect")

    def test_alld_wins_head_to_head_but_loses_field(self):
        res = round_robin(axelrod_field(), PD, rounds=200)
        i_tft = res.names.index("tit_for_tat")
        i_alld = res.names.index("always_defect")
        # Head-to-head AllD nets more than TFT...
        assert res.mean_payoff[i_alld, i_tft] >= res.mean_payoff[i_tft, i_alld]
        # ...yet TFT ranks higher against the whole field.
        ranking = [name for name, _ in res.ranking()]
        assert ranking.index("tit_for_tat") < ranking.index("always_defect")

    def test_self_play_diagonal(self):
        res = round_robin([TitForTat(), AlwaysDefect()], PD, rounds=10)
        assert res.mean_payoff[0, 0] == pytest.approx(3.0)  # TFT vs itself
        assert res.mean_payoff[1, 1] == pytest.approx(1.0)  # AllD vs itself

    def test_exclude_self_play(self):
        res = round_robin(
            [TitForTat(), AlwaysDefect()], PD, rounds=10, include_self_play=False
        )
        assert res.mean_payoff[0, 0] == 0.0

    def test_deterministic(self):
        r1 = round_robin(axelrod_field(), PD, rounds=30, seed=5)
        r2 = round_robin(axelrod_field(), PD, rounds=30, seed=5)
        assert np.array_equal(r1.mean_payoff, r2.mean_payoff)

    def test_needs_two_strategies(self):
        with pytest.raises(ValueError):
            round_robin([TitForTat()], PD, rounds=10)

    def test_cooperation_rates_in_range(self):
        res = round_robin(axelrod_field(), PD, rounds=50)
        assert np.all(res.cooperation >= 0.0)
        assert np.all(res.cooperation <= 1.0)
