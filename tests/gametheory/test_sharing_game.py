"""Tests for the mean-field sharing-game analysis."""

import pytest

from repro.core.params import UtilityParams
from repro.gametheory.sharing_game import (
    PAPER_GRID,
    MeanFieldSharingGame,
    SharingLevel,
)


class TestSharingLevel:
    def test_grid_has_nine_points(self):
        assert len(PAPER_GRID) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            SharingLevel(articles=1.5, bandwidth=0.0)


class TestMeanFieldSharingGame:
    def test_free_riding_dominant_without_incentives(self):
        """The paper's premise: without differentiation, not sharing wins."""
        game = MeanFieldSharingGame(incentives_enabled=False)
        assert game.is_free_riding_dominant()

    def test_free_riding_not_dominant_with_incentives(self):
        game = MeanFieldSharingGame(incentives_enabled=True)
        assert not game.is_free_riding_dominant()

    def test_equilibrium_sharing_positive_with_incentives(self):
        game = MeanFieldSharingGame(incentives_enabled=True)
        eq = game.symmetric_equilibrium()
        assert eq.level.articles + eq.level.bandwidth > 0.0

    def test_equilibrium_free_riding_without_incentives(self):
        game = MeanFieldSharingGame(incentives_enabled=False)
        eq = game.symmetric_equilibrium()
        assert eq.level == SharingLevel(0.0, 0.0)
        assert eq.converged

    def test_steady_reputation_monotone(self):
        game = MeanFieldSharingGame()
        r0 = game.steady_reputation(SharingLevel(0.0, 0.0))
        r1 = game.steady_reputation(SharingLevel(0.5, 0.5))
        r2 = game.steady_reputation(SharingLevel(1.0, 1.0))
        assert r0 < r1 < r2

    def test_newcomer_reputation_is_r_min(self):
        game = MeanFieldSharingGame()
        assert game.steady_reputation(SharingLevel(0.0, 0.0)) == pytest.approx(0.05)

    def test_utility_decreasing_in_cost_without_incentives(self):
        game = MeanFieldSharingGame(incentives_enabled=False)
        pop = SharingLevel(0.5, 0.5)
        u_none = game.expected_utility(SharingLevel(0.0, 0.0), pop)
        u_full = game.expected_utility(SharingLevel(1.0, 1.0), pop)
        assert u_none > u_full

    def test_no_sharing_population_no_benefit(self):
        game = MeanFieldSharingGame()
        u = game.expected_utility(SharingLevel(0.0, 0.0), SharingLevel(0.0, 0.0))
        assert u == 0.0

    def test_higher_reputation_higher_share(self):
        game = MeanFieldSharingGame(incentives_enabled=True)
        pop = SharingLevel(0.5, 0.5)
        u_low = game.expected_utility(SharingLevel(0.0, 0.0), pop)
        # Full sharer pays more cost but receives a bigger share; verify the
        # benefit component by stripping costs.
        costless = MeanFieldSharingGame(
            incentives_enabled=True,
            utility=UtilityParams(alpha=4.0, beta=0.0, gamma=0.0),
        )
        assert costless.expected_utility(
            SharingLevel(1.0, 1.0), pop
        ) > costless.expected_utility(SharingLevel(0.0, 0.0), pop)
        assert u_low == pytest.approx(u_low)

    def test_utility_landscape_covers_grid(self):
        game = MeanFieldSharingGame()
        landscape = game.utility_landscape(SharingLevel(0.5, 0.5))
        assert set(landscape) == set(PAPER_GRID)

    def test_equilibrium_detects_cycles_gracefully(self):
        game = MeanFieldSharingGame()
        eq = game.symmetric_equilibrium(max_iter=3)
        assert eq.iterations <= 3

    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            MeanFieldSharingGame(n_peers=1)
