"""Tests for game payoff structures."""

import numpy as np
import pytest

from repro.gametheory.payoffs import COOPERATE, DEFECT, prisoners_dilemma


class TestPrisonersDilemma:
    def test_canonical_values(self):
        pd = prisoners_dilemma()
        assert pd.payoff(COOPERATE, COOPERATE) == 3.0
        assert pd.payoff(COOPERATE, DEFECT) == 0.0
        assert pd.payoff(DEFECT, COOPERATE) == 5.0
        assert pd.payoff(DEFECT, DEFECT) == 1.0

    def test_defection_dominant_one_shot(self):
        pd = prisoners_dilemma()
        for other in (COOPERATE, DEFECT):
            assert pd.payoff(DEFECT, other) > pd.payoff(COOPERATE, other)

    def test_mutual_cooperation_socially_optimal(self):
        pd = prisoners_dilemma()
        cc = 2 * pd.payoff(COOPERATE, COOPERATE)
        dc = pd.payoff(DEFECT, COOPERATE) + pd.payoff(COOPERATE, DEFECT)
        dd = 2 * pd.payoff(DEFECT, DEFECT)
        assert cc > dc and cc > dd

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            prisoners_dilemma(temptation=1.0)  # breaks T > R

    def test_axelrod_condition_enforced(self):
        with pytest.raises(ValueError):
            prisoners_dilemma(temptation=7.0, reward=3.0, punishment=1.0, sucker=0.0)

    def test_vectorized_payoffs(self):
        pd = prisoners_dilemma()
        own = np.array([0, 0, 1, 1])
        other = np.array([0, 1, 0, 1])
        assert pd.payoffs(own, other).tolist() == [3.0, 0.0, 5.0, 1.0]

    def test_as_array(self):
        pd = prisoners_dilemma()
        arr = pd.as_array()
        assert arr.shape == (2, 2)
        assert arr[1, 0] == 5.0
