"""Tests for the classic repeated-game strategies."""

import pytest

from repro.gametheory.payoffs import COOPERATE, DEFECT
from repro.gametheory.strategies import (
    STRATEGY_REGISTRY,
    Alternator,
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    RandomStrategy,
    SuspiciousTitForTat,
    TitForTat,
    TitForTwoTats,
    make_strategy,
)


class TestTitForTat:
    def test_opens_cooperating(self):
        assert TitForTat().first_move() == COOPERATE

    def test_mirrors_last_move(self):
        tft = TitForTat()
        assert tft.next_move([COOPERATE], [DEFECT]) == DEFECT
        assert tft.next_move([DEFECT], [COOPERATE]) == COOPERATE


class TestSuspiciousTitForTat:
    def test_opens_defecting(self):
        assert SuspiciousTitForTat().first_move() == DEFECT


class TestTitForTwoTats:
    def test_forgives_single_defection(self):
        s = TitForTwoTats()
        assert s.next_move([COOPERATE], [DEFECT]) == COOPERATE

    def test_punishes_double_defection(self):
        s = TitForTwoTats()
        assert s.next_move([COOPERATE, COOPERATE], [DEFECT, DEFECT]) == DEFECT


class TestGrimTrigger:
    def test_cooperates_until_betrayed(self):
        s = GrimTrigger()
        assert s.first_move() == COOPERATE
        assert s.next_move([COOPERATE], [COOPERATE]) == COOPERATE
        assert s.next_move([COOPERATE], [DEFECT]) == DEFECT
        # Never forgives.
        assert s.next_move([DEFECT], [COOPERATE]) == DEFECT

    def test_reset_clears_trigger(self):
        s = GrimTrigger()
        s.next_move([COOPERATE], [DEFECT])
        s.reset()
        assert s.next_move([COOPERATE], [COOPERATE]) == COOPERATE


class TestPavlov:
    def test_win_stay(self):
        s = Pavlov()
        assert s.next_move([COOPERATE], [COOPERATE]) == COOPERATE
        assert s.next_move([DEFECT], [COOPERATE]) == DEFECT

    def test_lose_shift(self):
        s = Pavlov()
        assert s.next_move([COOPERATE], [DEFECT]) == DEFECT
        assert s.next_move([DEFECT], [DEFECT]) == COOPERATE


class TestConstantStrategies:
    def test_always_cooperate(self):
        s = AlwaysCooperate()
        assert s.first_move() == COOPERATE
        assert s.next_move([DEFECT], [DEFECT]) == COOPERATE

    def test_always_defect(self):
        s = AlwaysDefect()
        assert s.first_move() == DEFECT
        assert s.next_move([COOPERATE], [COOPERATE]) == DEFECT

    def test_alternator(self):
        s = Alternator()
        assert s.first_move() == COOPERATE
        assert s.next_move([COOPERATE], [COOPERATE]) == DEFECT
        assert s.next_move([DEFECT], [COOPERATE]) == COOPERATE


class TestRandomStrategy:
    def test_reproducible_after_reset(self):
        s = RandomStrategy(p_cooperate=0.5, seed=42)
        seq1 = [s.first_move() for _ in range(10)]
        s.reset()
        seq2 = [s.first_move() for _ in range(10)]
        assert seq1 == seq2

    def test_extreme_probabilities(self):
        assert RandomStrategy(p_cooperate=1.0).first_move() == COOPERATE
        assert RandomStrategy(p_cooperate=0.0).first_move() == DEFECT

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomStrategy(p_cooperate=1.5)


class TestRegistry:
    def test_all_registered(self):
        assert len(STRATEGY_REGISTRY) == 9
        assert "tit_for_tat" in STRATEGY_REGISTRY

    def test_make_strategy(self):
        assert isinstance(make_strategy("pavlov"), Pavlov)
        assert isinstance(make_strategy("random", p_cooperate=0.2), RandomStrategy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_strategy("quantum_tft")
