"""Tests for replicator dynamics."""

import numpy as np
import pytest

from repro.gametheory.payoffs import prisoners_dilemma
from repro.gametheory.replicator import replicator_dynamics
from repro.gametheory.strategies import AlwaysCooperate, AlwaysDefect, TitForTat
from repro.gametheory.tournament import round_robin


class TestReplicatorDynamics:
    def test_shares_stay_normalized(self):
        f = np.array([[3.0, 0.0], [5.0, 1.0]])
        traj = replicator_dynamics(f, np.array([0.5, 0.5]), steps=100)
        assert np.allclose(traj.shares.sum(axis=1), 1.0)

    def test_defectors_invade_cooperators(self):
        """In pure PD fitness, AllD takes over a C/D mix."""
        f = np.array([[3.0, 0.0], [5.0, 1.0]])  # rows: C, D
        traj = replicator_dynamics(
            f, np.array([0.9, 0.1]), steps=500, names=["C", "D"]
        )
        assert traj.final[1] > 0.99
        assert traj.survivors() == ["D"]

    def test_tft_resists_invasion_in_repeated_game(self):
        """With repeated-game fitness, TFT + cooperators hold the field."""
        field = [TitForTat(), AlwaysCooperate(), AlwaysDefect()]
        res = round_robin(field, prisoners_dilemma(), rounds=200)
        traj = replicator_dynamics(
            res.mean_payoff, np.array([0.4, 0.4, 0.2]), steps=500, names=res.names
        )
        alld = traj.names.index("always_defect")
        assert traj.final[alld] < 0.01

    def test_fixed_point_of_pure_population(self):
        f = np.array([[3.0, 0.0], [5.0, 1.0]])
        traj = replicator_dynamics(f, np.array([0.0, 1.0]), steps=50)
        assert traj.final.tolist() == [0.0, 1.0]

    def test_floor_keeps_minorities_alive(self):
        """The floor is applied before renormalization, so the kept share
        is the floor up to the normalization factor."""
        f = np.array([[3.0, 0.0], [5.0, 1.0]])
        traj = replicator_dynamics(f, np.array([0.5, 0.5]), steps=300, floor=0.01)
        assert traj.final.min() >= 0.01 * 0.9
        # Without a floor the minority would be essentially extinct.
        no_floor = replicator_dynamics(f, np.array([0.5, 0.5]), steps=300)
        assert no_floor.final.min() < 1e-6

    def test_negative_fitness_handled(self):
        f = np.array([[-1.0, -2.0], [-0.5, -3.0]])
        traj = replicator_dynamics(f, np.array([0.5, 0.5]), steps=50)
        assert np.all(np.isfinite(traj.shares))
        assert np.allclose(traj.shares.sum(axis=1), 1.0)

    def test_validation(self):
        f = np.eye(2)
        with pytest.raises(ValueError):
            replicator_dynamics(f, np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            replicator_dynamics(f, np.array([0.5, 0.5, 0.0]))
        with pytest.raises(ValueError):
            replicator_dynamics(np.zeros((2, 3)), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            replicator_dynamics(f, np.array([0.5, 0.5]), steps=-1)

    def test_trajectory_length(self):
        f = np.eye(3)
        traj = replicator_dynamics(f, np.ones(3) / 3, steps=7)
        assert traj.shares.shape == (8, 3)
