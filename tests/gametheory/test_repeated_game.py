"""Tests for repeated matches and discounted scoring."""

import numpy as np
import pytest

from repro.gametheory.payoffs import prisoners_dilemma
from repro.gametheory.repeated_game import discounted_score, play_match
from repro.gametheory.strategies import (
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    TitForTat,
)

PD = prisoners_dilemma()


class TestPlayMatch:
    def test_tft_vs_tft_always_cooperates(self):
        res = play_match(TitForTat(), TitForTat(), PD, rounds=50)
        assert res.cooperation_rate_a() == 1.0
        assert res.cooperation_rate_b() == 1.0
        assert res.total_a == 50 * 3.0

    def test_tft_vs_alld(self):
        """TFT loses only the first round to a defector."""
        res = play_match(TitForTat(), AlwaysDefect(), PD, rounds=20)
        assert res.actions_a[0] == 0  # opens cooperating
        assert np.all(res.actions_a[1:] == 1)  # then retaliates
        assert res.total_b - res.total_a == pytest.approx(5.0 - 0.0)

    def test_allc_exploited_by_alld(self):
        res = play_match(AlwaysCooperate(), AlwaysDefect(), PD, rounds=10)
        assert res.total_a == 0.0
        assert res.total_b == 50.0

    def test_grim_never_forgives(self):
        class DefectOnce(TitForTat):
            def next_move(self, mine, theirs):
                return 1 if len(mine) == 1 else 0

        res = play_match(GrimTrigger(), DefectOnce(), PD, rounds=10)
        # After the betrayal in round 2, grim defects for the rest.
        assert np.all(res.actions_a[2:] == 1)

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError):
            play_match(TitForTat(), TitForTat(), PD, rounds=5, noise=0.1)

    def test_noise_breaks_tft_mutual_cooperation(self, rng):
        res = play_match(
            TitForTat(), TitForTat(), PD, rounds=500, noise=0.05, rng=rng
        )
        # A single flip locks plain TFT into echo defections.
        assert res.cooperation_rate_a() < 0.95

    def test_pavlov_recovers_from_noise(self, rng):
        res = play_match(Pavlov(), Pavlov(), PD, rounds=500, noise=0.05, rng=rng)
        # Pavlov re-coordinates after a flip, so cooperation stays high.
        assert res.cooperation_rate_a() > 0.6

    def test_round_validation(self):
        with pytest.raises(ValueError):
            play_match(TitForTat(), TitForTat(), PD, rounds=0)

    def test_payoffs_match_actions(self):
        res = play_match(AlwaysDefect(), AlwaysCooperate(), PD, rounds=3)
        assert res.payoffs_a.tolist() == [5.0, 5.0, 5.0]
        assert res.payoffs_b.tolist() == [0.0, 0.0, 0.0]


class TestDiscountedScore:
    def test_no_discount_is_sum(self):
        assert discounted_score(np.array([1.0, 2.0, 3.0]), 1.0) == 6.0

    def test_full_discount_is_first(self):
        assert discounted_score(np.array([1.0, 2.0, 3.0]), 0.0) == 1.0

    def test_geometric(self):
        assert discounted_score(np.array([1.0, 1.0, 1.0]), 0.5) == pytest.approx(1.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            discounted_score(np.array([1.0]), 1.5)
