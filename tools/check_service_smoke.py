#!/usr/bin/env python
"""End-to-end smoke of the simulation service: serve, submit, stream.

Usage::

    python tools/check_service_smoke.py [STORE_DIR]

Starts ``repro serve`` as a real subprocess on an ephemeral port, then
drives the full client lifecycle over actual sockets:

* ``/healthz`` answers ok;
* a scenario submission is accepted and computes to completion;
* the SSE stream replays the whole lifecycle (queued -> ... ->
  completed) with contiguous event ids;
* resubmitting the same scenario is served entirely from cache with no
  new store records (the dedup contract);
* ``/metrics`` exposes the service counters;
* SIGTERM shuts the server down gracefully (exit code 0).

Exits non-zero with a diagnostic on any violation.  Used by the CI
service smoke step; handy locally as a one-shot install check.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
sys.path.insert(0, str(REPO_SRC))

from repro.store._runstore import RunStore  # noqa: E402

SCENARIO = "base/default"
STARTUP_TIMEOUT_S = 30.0
COMPLETE_TIMEOUT_S = 180.0


def _request(base: str, method: str, path: str, body: dict | None = None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, method=method, data=data)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:  # error statuses still carry JSON
        return exc.code, json.loads(exc.read())


def _read_sse_events(base: str, path: str, max_events: int = 50) -> list[dict]:
    """Read SSE events until the terminal one (the replay covers it)."""
    events: list[dict] = []
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        fields: dict = {}
        for raw in resp:
            line = raw.decode("utf-8").rstrip("\n")
            if not line:
                if fields:
                    events.append(
                        {
                            "seq": int(fields.get("id", 0)),
                            "event": fields.get("event", ""),
                            "data": json.loads(fields.get("data", "null")),
                        }
                    )
                    fields = {}
                    if events[-1]["event"] in ("completed", "failed"):
                        break
                    if len(events) >= max_events:
                        break
                continue
            if line.startswith(":"):
                continue
            name, _, value = line.partition(":")
            fields[name] = value.lstrip(" ")
    return events


def main(argv: list[str]) -> int:
    """Run the smoke; ``argv`` is ``[store_dir?]``."""
    store_dir = (
        Path(argv[0]) if argv else Path("service-smoke-store")
    ).resolve()
    failures: list[str] = []

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.store.cli", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--store", str(store_dir), "--workers", "2",
        ],
        env={**os.environ, "PYTHONPATH": str(REPO_SRC)},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    base = None
    try:
        # The serve banner names the bound (ephemeral) port.
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        banner = ""
        while time.monotonic() < deadline:
            banner = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            if match:
                base = f"http://127.0.0.1:{match.group(1)}"
                break
            if proc.poll() is not None:
                break
        if base is None:
            print(f"FAIL: server never announced a port (last: {banner!r})")
            return 1
        # Wait until the socket actually accepts.
        port = int(base.rsplit(":", 1)[1])
        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", port), 1).close()
                break
            except OSError:
                time.sleep(0.1)

        status, health = _request(base, "GET", "/healthz")
        if status != 200 or health.get("status") != "ok":
            failures.append(f"healthz: {status} {health}")

        status, job = _request(
            base, "POST", "/jobs",
            body={"scenario": SCENARIO, "fast": True, "seeds": 1},
        )
        if status != 201:
            failures.append(f"submit: expected 201, got {status} {job}")
        job_id = job.get("id", "")

        deadline = time.monotonic() + COMPLETE_TIMEOUT_S
        view = job
        while time.monotonic() < deadline and view.get("state") not in (
            "completed", "failed",
        ):
            time.sleep(0.25)
            _, view = _request(base, "GET", f"/jobs/{job_id}")
        if view.get("state") != "completed":
            failures.append(f"job never completed: {view}")

        events = _read_sse_events(base, f"/jobs/{job_id}/events")
        kinds = [e["event"] for e in events]
        if not events or kinds[-1] != "completed":
            failures.append(f"SSE stream did not end in 'completed': {kinds}")
        if "progress" not in kinds:
            failures.append(f"SSE stream carried no progress events: {kinds}")
        seqs = [e["seq"] for e in events]
        if seqs != list(range(1, len(seqs) + 1)):
            failures.append(f"SSE event ids not contiguous from 1: {seqs}")

        store = RunStore(store_dir)
        if len(store) != view.get("total"):
            failures.append(
                f"store has {len(store)} records, job computed "
                f"{view.get('total')} configs"
            )

        status, again = _request(
            base, "POST", "/jobs",
            body={"scenario": SCENARIO, "fast": True, "seeds": 1},
        )
        if status != 201 or again.get("state") != "completed":
            failures.append(f"cached resubmit not instant: {status} {again}")
        elif again.get("cached") != again.get("total"):
            failures.append(f"cached resubmit recomputed: {again}")
        store.refresh()
        if len(store) != view.get("total"):
            failures.append("cached resubmit grew the store")

        status, _ = _request(base, "GET", "/jobs")
        if status != 200:
            failures.append(f"list jobs: {status}")

        req = urllib.request.Request(base + "/metrics")
        with urllib.request.urlopen(req, timeout=30) as resp:
            metrics_text = resp.read().decode()
        for needle in (
            "service_requests_total",
            "service_jobs_total",
            "service_configs_total",
        ):
            if needle not in metrics_text:
                failures.append(f"/metrics missing {needle}")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                failures.append("server did not exit within 60s of SIGTERM")
    if proc.returncode != 0:
        failures.append(f"server exit code {proc.returncode}")

    if failures:
        print("FAIL: service smoke violations:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"OK: served {SCENARIO} ({view.get('total')} configs), "
        f"{len(events)} SSE events, cache-hit resubmit, clean shutdown"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
