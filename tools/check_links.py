#!/usr/bin/env python3
"""Check that relative markdown links in README/docs point at real files.

Usage::

    python tools/check_links.py [file-or-dir ...]

Defaults to ``README.md`` and ``docs/``.  Only repository-relative link
targets are checked (external ``http(s)``/``mailto`` URLs and pure
``#fragment`` anchors are skipped — CI must not depend on the network).
Exit status 1 lists every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target) — images included via the
#: leading '!', which needs no special casing for existence checks.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown(paths: list[Path]):
    """Yield every markdown file under the given files/directories."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md":
            yield path


def broken_links(md_file: Path, repo_root: Path) -> list[str]:
    """Relative link targets in ``md_file`` that do not exist on disk."""
    bad = []
    for match in _LINK_RE.finditer(md_file.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        # Strip an anchor; the file part is what must exist.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (
            repo_root / file_part.lstrip("/")
            if file_part.startswith("/")
            else md_file.parent / file_part
        )
        if not resolved.exists():
            bad.append(target)
    return bad


def main(argv: list[str]) -> int:
    """Check all given paths; print broken links and return the status."""
    repo_root = Path(__file__).resolve().parent.parent
    paths = (
        [Path(a) for a in argv]
        if argv
        else [repo_root / "README.md", repo_root / "docs"]
    )
    failures = 0
    checked = 0
    for md_file in iter_markdown(paths):
        checked += 1
        for target in broken_links(md_file, repo_root):
            print(f"{md_file}: broken link -> {target}")
            failures += 1
    print(f"checked {checked} markdown file(s), {failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
