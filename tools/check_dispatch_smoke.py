#!/usr/bin/env python
"""Assert a cooperative sweep drain was clean: complete, zero duplicates.

Usage::

    python tools/check_dispatch_smoke.py STORE_DIR SUMMARY_JSON [SUMMARY_JSON...] \
        [--min-reclaims N] [--min-resumes N] [--allow-quarantined]

Feed it the store a grid was published into plus the ``--summary-json``
output of every ``repro sweep-worker`` that drained it.  It verifies the
distributed-dispatch contract end to end:

* every published grid's configs are all present in the store
  (complete drain); with ``--allow-quarantined``, a persisted
  ``errors/<hash>.json`` quarantine artifact also settles a config;
* no config hash appears in more than one worker's computed set
  (zero duplicate computation — the leases actually excluded);
* the workers' computed sets plus anything cached before the drain
  cover every grid config (nothing fell through the cracks);
* no lease files were left behind;
* with ``--min-reclaims`` / ``--min-resumes``, the workers together
  reclaimed at least N expired peer leases / resumed at least N tasks
  from mid-run checkpoints — the chaos smoke uses these to prove a
  SIGKILL'd worker's task was actually taken over and resumed rather
  than silently recomputed or dropped.

Exits non-zero with a diagnostic on any violation.  Used by the CI
dispatch and chaos smoke steps; handy locally after any multi-terminal
drain.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(REPO_SRC))

from repro.store._runstore import RunStore  # noqa: E402


def main(argv: list[str]) -> int:
    """Validate the drain described by ``argv``; 0 iff every check holds."""
    parser = argparse.ArgumentParser(
        prog="check_dispatch_smoke",
        description="assert a cooperative sweep drain was complete and duplicate-free",
    )
    parser.add_argument("store_dir", help="store the grid was published into")
    parser.add_argument(
        "summaries",
        nargs="+",
        metavar="SUMMARY_JSON",
        help="sweep-worker --summary-json output files, one per worker",
    )
    parser.add_argument(
        "--min-reclaims",
        type=int,
        default=0,
        metavar="N",
        help="require at least N expired-lease reclaims across all workers",
    )
    parser.add_argument(
        "--min-resumes",
        type=int,
        default=0,
        metavar="N",
        help="require at least N checkpoint resumes across all workers",
    )
    parser.add_argument(
        "--allow-quarantined",
        action="store_true",
        help="count configs with a persisted quarantine artifact as settled",
    )
    args = parser.parse_args(argv)

    store = RunStore(args.store_dir)
    summaries = [
        json.loads(Path(p).read_text(encoding="utf-8")) for p in args.summaries
    ]

    computed = [set(s.get("computed_hashes", ())) for s in summaries]
    failures: list[str] = []

    for i, a in enumerate(computed):
        for j, b in enumerate(computed[i + 1 :], start=i + 1):
            overlap = a & b
            if overlap:
                failures.append(
                    f"workers {i} and {j} both computed "
                    f"{len(overlap)} config(s): "
                    + ", ".join(sorted(h[:12] for h in overlap))
                )

    quarantined = set(store.error_hashes()) if args.allow_quarantined else set()

    def settled(h: str) -> bool:
        return store.contains_hash(h) or h in quarantined

    grid_hashes: set[str] = set()
    for key in store.grid_keys():
        manifest = store.get_grid(key)
        if manifest is None:
            failures.append(f"grid manifest {key[:12]} unreadable")
            continue
        grid_hashes.update(manifest.config_hashes)
        undrained = [h for h in manifest.config_hashes if not settled(h)]
        if undrained:
            failures.append(
                f"grid {key[:12]} incomplete: {len(undrained)} config(s) "
                "missing from the store"
            )

    all_computed = set().union(*computed) if computed else set()
    stray = all_computed - grid_hashes
    if grid_hashes and stray:
        failures.append(
            f"workers computed {len(stray)} config(s) outside any "
            "published grid"
        )

    leases = list((store.root / "claims").glob("*.lease"))
    if leases:
        failures.append(f"{len(leases)} lease file(s) left behind")

    def stat_total(name: str) -> int:
        return sum(
            int(grid.get(name, 0))
            for s in summaries
            for grid in s.get("grids", {}).values()
        )

    reclaims = stat_total("reclaimed")
    resumes = stat_total("resumed")
    if reclaims < args.min_reclaims:
        failures.append(
            f"only {reclaims} expired-lease reclaim(s) across workers "
            f"(need >= {args.min_reclaims}): the injected crash was never "
            "taken over"
        )
    if resumes < args.min_resumes:
        failures.append(
            f"only {resumes} checkpoint resume(s) across workers "
            f"(need >= {args.min_resumes}): reclaimed work restarted from "
            "step 0 instead of its checkpoint"
        )

    total = sum(len(c) for c in computed)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    extras = ""
    if args.min_reclaims or args.min_resumes:
        extras = f", {reclaims} reclaim(s), {resumes} resume(s)"
    if quarantined:
        extras += f", {len(quarantined)} quarantined"
    print(
        f"dispatch smoke OK: {len(summaries)} worker(s) computed {total} "
        f"config(s) across {len(store.grid_keys())} grid(s), "
        f"no duplicates, no leftover leases{extras}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
