#!/usr/bin/env python
"""Assert a cooperative sweep drain was clean: complete, zero duplicates.

Usage::

    python tools/check_dispatch_smoke.py STORE_DIR SUMMARY_JSON [SUMMARY_JSON...]

Feed it the store a grid was published into plus the ``--summary-json``
output of every ``repro sweep-worker`` that drained it.  It verifies the
distributed-dispatch contract end to end:

* every published grid's configs are all present in the store
  (complete drain);
* no config hash appears in more than one worker's computed set
  (zero duplicate computation — the leases actually excluded);
* the workers' computed sets plus anything cached before the drain
  cover every grid config (nothing fell through the cracks);
* no lease files were left behind.

Exits non-zero with a diagnostic on any violation.  Used by the CI
dispatch smoke step; handy locally after any multi-terminal drain.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(REPO_SRC))

from repro.store.runstore import RunStore  # noqa: E402


def main(argv: list[str]) -> int:
    """Validate the drain; ``argv`` is ``[store_dir, summary...]``."""
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    store = RunStore(argv[0])
    summaries = [json.loads(Path(p).read_text(encoding="utf-8")) for p in argv[1:]]

    computed = [set(s.get("computed_hashes", ())) for s in summaries]
    failures: list[str] = []

    for i, a in enumerate(computed):
        for j, b in enumerate(computed[i + 1 :], start=i + 1):
            overlap = a & b
            if overlap:
                failures.append(
                    f"workers {i} and {j} both computed "
                    f"{len(overlap)} config(s): "
                    + ", ".join(sorted(h[:12] for h in overlap))
                )

    grid_hashes: set[str] = set()
    for key in store.grid_keys():
        manifest = store.get_grid(key)
        if manifest is None:
            failures.append(f"grid manifest {key[:12]} unreadable")
            continue
        grid_hashes.update(manifest.config_hashes)
        undrained = [
            h for h in manifest.config_hashes if not store.contains_hash(h)
        ]
        if undrained:
            failures.append(
                f"grid {key[:12]} incomplete: {len(undrained)} config(s) "
                "missing from the store"
            )

    all_computed = set().union(*computed) if computed else set()
    stray = all_computed - grid_hashes
    if grid_hashes and stray:
        failures.append(
            f"workers computed {len(stray)} config(s) outside any "
            "published grid"
        )

    leases = list((store.root / "claims").glob("*.lease"))
    if leases:
        failures.append(f"{len(leases)} lease file(s) left behind")

    total = sum(len(c) for c in computed)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"dispatch smoke OK: {len(summaries)} worker(s) computed {total} "
        f"config(s) across {len(store.grid_keys())} grid(s), "
        "no duplicates, no leftover leases"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
