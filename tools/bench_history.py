#!/usr/bin/env python
"""Persist the perf trajectory: distill benchmark medians into a baseline.

Two modes:

``python tools/bench_history.py``
    Run the kernel + engine + sweep benches under ``pytest-benchmark
    --benchmark-json`` and distill the per-bench **median seconds** (plus
    machine info and the speedup extra-infos) into ``BENCH_engine.json``
    at the repo root.  Commit the file so later PRs can diff against it.

``python tools/bench_history.py --check [--max-regression 2.0] [--strict]``
    Run the same benches fresh and compare every *kernel* bench median
    against the committed baseline; exit non-zero when any regresses by
    more than the factor (default 2x — generous on purpose: CI runners
    are noisy, and the guard is for order-of-magnitude mistakes, not
    microbenchmark drift).  Engine medians are reported but not gated
    (they are single-round end-to-end runs and far noisier).  Absolute
    medians only transfer between comparable machines, so when the
    machine fingerprint (arch, cpu count, python major.minor) differs
    from the baseline's the gate downgrades to warnings — reseed the
    baseline on the new machine class, or pass ``--strict`` to enforce
    anyway.

No third-party dependencies beyond the test stack the repo already uses.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_engine.json"

#: Bench files distilled into the baseline.  Kernel benches are the
#: regression-gated set (stable microbenchmarks); engine and sweep
#: benches are recorded for trend-watching only (single-round end-to-end
#: runs; the sweep benches additionally involve subprocess workers).
KERNEL_BENCH_FILE = "benchmarks/test_bench_kernels.py"
ENGINE_BENCH_FILE = "benchmarks/test_bench_engine.py"
SWEEP_BENCH_FILE = "benchmarks/test_bench_sweep.py"


def run_benches(extra_args: list[str] | None = None) -> dict:
    """Execute the benches and return pytest-benchmark's JSON payload."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = Path(tmp.name)
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        KERNEL_BENCH_FILE,
        ENGINE_BENCH_FILE,
        SWEEP_BENCH_FILE,
        "-q",
        f"--benchmark-json={json_path}",
        *(extra_args or []),
    ]
    # Inherit the full environment (conda/virtualenv interpreters need
    # more than PATH to start) and only pin PYTHONPATH at the repo's src.
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(f"bench run failed with exit code {proc.returncode}")
    try:
        return json.loads(json_path.read_text())
    finally:
        json_path.unlink(missing_ok=True)


def distill(payload: dict) -> dict:
    """Reduce a pytest-benchmark payload to the committed baseline shape."""
    machine = payload.get("machine_info", {})
    benches: dict[str, dict] = {}
    for bench in payload["benchmarks"]:
        entry: dict = {
            "median_s": bench["stats"]["median"],
            "group": (
                "kernel"
                if "test_bench_kernels" in bench["fullname"]
                else "sweep"
                if "test_bench_sweep" in bench["fullname"]
                else "engine"
            ),
        }
        extra = bench.get("extra_info") or {}
        if extra:
            entry["extra_info"] = extra
        benches[bench["name"]] = entry
    return {
        "schema_version": 1,
        "machine": {
            "node": machine.get("node"),
            "machine": machine.get("machine"),
            "processor": machine.get("processor"),
            "cpu_count": machine.get("cpu", {}).get("count"),
            "python": machine.get("python_version", platform.python_version()),
        },
        "benchmarks": benches,
    }


def seed(args: argparse.Namespace) -> int:
    """Run the benches and (re)write the committed baseline."""
    baseline = distill(run_benches())
    BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    n = len(baseline["benchmarks"])
    print(f"wrote {BASELINE.name}: {n} bench medians")
    return 0


def _machine_fingerprint(machine: dict) -> tuple:
    """The bits of machine info that make absolute medians comparable."""
    python = str(machine.get("python") or "")
    return (
        machine.get("machine"),
        machine.get("cpu_count"),
        ".".join(python.split(".")[:2]),  # major.minor
    )


def check(args: argparse.Namespace) -> int:
    """Compare fresh kernel medians against the committed baseline.

    Absolute microbenchmark medians only transfer between comparable
    machines, so the gate is advisory (warn, exit 0) when the fresh
    machine fingerprint differs from the baseline's — a slower runner
    must not fail CI on hardware, and the right response is to reseed
    the baseline from that class of machine.  ``--strict`` forces the
    gate regardless.
    """
    if not BASELINE.exists():
        raise SystemExit(f"no baseline at {BASELINE}; run without --check first")
    baseline_doc = json.loads(BASELINE.read_text())
    baseline = baseline_doc["benchmarks"]
    fresh = distill(run_benches())
    if args.out:
        Path(args.out).write_text(
            json.dumps(fresh, indent=2, sort_keys=True) + "\n"
        )
        print(f"fresh medians written to {args.out}")
    same_machine = _machine_fingerprint(
        baseline_doc.get("machine", {})
    ) == _machine_fingerprint(fresh["machine"])
    enforce = same_machine or args.strict
    if not enforce:
        print(
            "note: machine fingerprint differs from the baseline's "
            "(different hardware class / python); regressions are "
            "reported as warnings only — reseed BENCH_engine.json on "
            "this machine class or pass --strict to enforce"
        )
    failures: list[str] = []
    for name, entry in sorted(fresh["benchmarks"].items()):
        base = baseline.get(name)
        if base is None:
            print(f"  NEW      {name}: {entry['median_s']:.3e}s (no baseline)")
            continue
        ratio = entry["median_s"] / base["median_s"]
        gated = base.get("group") == "kernel"
        tag = base.get("group") or "engine"
        print(
            f"  {tag:<8} {name}: {entry['median_s']:.3e}s "
            f"vs {base['median_s']:.3e}s ({ratio:.2f}x)"
        )
        if gated and ratio > args.max_regression:
            failures.append(f"{name}: {ratio:.2f}x > {args.max_regression}x")
    if failures:
        stream = sys.stderr if enforce else sys.stdout
        label = "kernel bench regressions beyond the gate" + (
            "" if enforce else " (warning only: different machine)"
        )
        print(f"{label}:", file=stream)
        for line in failures:
            print(f"  {line}", file=stream)
        return 1 if enforce else 0
    print("no kernel bench regression beyond the gate")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare fresh medians against the committed baseline",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail --check when a kernel bench regresses beyond this factor",
    )
    parser.add_argument(
        "--out",
        help="with --check: also write the fresh distilled medians here "
        "(CI uploads them as an artifact)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --check: enforce the gate even when the machine "
        "fingerprint differs from the baseline's",
    )
    args = parser.parse_args(argv)
    return check(args) if args.check else seed(args)


if __name__ == "__main__":
    sys.exit(main())
