#!/usr/bin/env python
"""Memory-regression gate: prove the sparse scale path stays O(N).

Builds a tit-for-tat simulation on the sparse ledger path, steps it a few
times, and measures the **tracemalloc peak** of everything the run
allocates (numpy routes its buffers through the traced allocator).  The
gate: that peak must stay below ``--budget-fraction`` (default 25%) of
the *dense equivalent* — the ``N × N × 8``-byte private-history matrix a
dense run would have to hold for the same population.  The dense side is
computed, not allocated, so the check runs comfortably on CI runners.

Exit status 0 when within budget, 1 on a breach — wired into the nightly
``scale-smoke`` CI job and runnable locally::

    PYTHONPATH=src python tools/mem_budget.py --agents 10000

Peak RSS (``resource.getrusage``) is reported alongside for context but
not gated: RSS includes the interpreter and imports, which would drown
the signal at small budgets.
"""

from __future__ import annotations

import argparse
import resource
import sys


def measure_peak_bytes(n_agents: int, steps: int, ledger_cap: int) -> tuple[int, int]:
    """(tracemalloc peak, ledger nbytes) for a short sparse tft run.

    Delegates to ``repro.sim.scenarios.scale_peak_bytes`` — the shared
    measurement recipe over the canonical ``scale_config`` workload — so
    this gate, the scale benchmarks and ``repro run scale/50k`` can
    never drift apart.
    """
    from repro.sim.scenarios import scale_peak_bytes

    return scale_peak_bytes(
        n_agents,
        steps,
        scheme="tft",
        seed=0,
        **{"scale.ledger_cap": ledger_cap},
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--agents", type=int, default=10_000,
                        help="population size (default: 10000)")
    parser.add_argument("--steps", type=int, default=5,
                        help="steps to run before measuring (default: 5)")
    parser.add_argument("--ledger-cap", type=int, default=64,
                        help="sparse ledger cap (default: 64)")
    parser.add_argument("--budget-fraction", type=float, default=0.25,
                        help="allowed peak as a fraction of the dense "
                        "equivalent (default: 0.25)")
    args = parser.parse_args(argv)

    dense_bytes = args.agents * args.agents * 8
    peak, ledger_bytes = measure_peak_bytes(
        args.agents, args.steps, args.ledger_cap
    )
    budget = int(dense_bytes * args.budget_fraction)
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    print(f"population:        {args.agents} agents, {args.steps} steps, "
          f"ledger cap {args.ledger_cap}")
    print(f"dense equivalent:  {dense_bytes / 1e6:9.1f} MB  (N*N*8 history matrix)")
    print(f"sparse ledger:     {ledger_bytes / 1e6:9.1f} MB")
    print(f"traced peak:       {peak / 1e6:9.1f} MB  "
          f"({peak / dense_bytes:.1%} of dense)")
    print(f"budget:            {budget / 1e6:9.1f} MB  "
          f"({args.budget_fraction:.0%} of dense)")
    print(f"process peak RSS:  {rss_kb / 1024:9.1f} MB  (reported, not gated)")

    if peak > budget:
        print(
            f"FAIL: sparse-path peak {peak / 1e6:.1f} MB exceeds the "
            f"{args.budget_fraction:.0%} budget — the scale path has "
            "regressed toward O(N^2)",
            file=sys.stderr,
        )
        return 1
    print("OK: sparse scale path within the memory budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
